// Unit tests of the deterministic fault-injection fabric: each fault
// primitive (drop, delay, duplicate, QP error, node crash/restart/pause/
// resume) in isolation, plus the determinism contract — an identical
// (plan, seed, workload) must reproduce a bit-identical completion trace.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "rdma/fabric.hpp"
#include "rdma/fault.hpp"
#include "sim/simulator.hpp"

namespace haechi::rdma {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : fabric_(sim_, net::ModelParams{}, /*seed=*/7),
        server_(fabric_.AddNode("server", NodeRole::kData)),
        client_(fabric_.AddNode("client")),
        client_cq_(client_.CreateCq()),
        server_cq_(server_.CreateCq()),
        client_qp_(client_.CreateQp(client_cq_, client_cq_)),
        server_qp_(server_.CreateQp(server_cq_, server_cq_)) {
    fabric_.Connect(client_qp_, server_qp_);
    remote_.resize(64, std::byte{0x5A});
    remote_mr_ = &server_.pd().Register(std::span<std::byte>(remote_),
                                        access::kAll);
    local_.resize(64, std::byte{0});
    client_.pd().Register(std::span<std::byte>(local_),
                          access::kLocalRead | access::kLocalWrite);
  }

  std::vector<WorkCompletion> RunAndPoll(CompletionQueue& cq) {
    sim_.Run();
    return cq.Poll(64);
  }

  sim::Simulator sim_;
  Fabric fabric_;
  Node& server_;
  Node& client_;
  CompletionQueue& client_cq_;
  CompletionQueue& server_cq_;
  QueuePair& client_qp_;
  QueuePair& server_qp_;
  std::vector<std::byte> remote_;
  std::vector<std::byte> local_;
  const MemoryRegion* remote_mr_ = nullptr;
};

TEST_F(FaultInjectionTest, DropCompletesWithRetryExceeded) {
  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDrop;
  rule.opcode = Opcode::kRead;
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRetryExceeded);
  EXPECT_EQ(wcs[0].wr_id, 1u);
  // No data moved for a lost request.
  EXPECT_EQ(local_[0], std::byte{0});
  // The give-up takes the configured transport retry budget.
  EXPECT_GE(wcs[0].timestamp, net::ModelParams{}.retry_timeout);
  EXPECT_EQ(fabric_.fault_stats().ops_dropped, 1u);
}

TEST_F(FaultInjectionTest, DelayPostponesCompletionByTheConfiguredAmount) {
  // Baseline: identical op without the plan, in a twin fabric.
  SimTime baseline = 0;
  {
    sim::Simulator sim;
    Fabric fabric(sim, net::ModelParams{}, 7);
    Node& server = fabric.AddNode("server", NodeRole::kData);
    Node& client = fabric.AddNode("client");
    auto& cq = client.CreateCq();
    auto& scq = server.CreateCq();
    auto& qp = client.CreateQp(cq, cq);
    auto& sqp = server.CreateQp(scq, scq);
    fabric.Connect(qp, sqp);
    std::vector<std::byte> remote(64), local(64);
    const MemoryRegion& mr =
        server.pd().Register(std::span<std::byte>(remote), access::kAll);
    client.pd().Register(std::span<std::byte>(local),
                         access::kLocalRead | access::kLocalWrite);
    ASSERT_TRUE(qp.PostRead(1, std::span<std::byte>(local), mr.remote_addr(),
                            mr.rkey())
                    .ok());
    sim.Run();
    auto wcs = cq.Poll(4);
    ASSERT_EQ(wcs.size(), 1u);
    baseline = wcs[0].timestamp;
  }

  constexpr SimDuration kExtra = 5'000;
  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDelay;
  rule.delay = kExtra;
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(wcs[0].timestamp, baseline + kExtra);
  EXPECT_EQ(local_[0], std::byte{0x5A});  // data still correct
  EXPECT_EQ(fabric_.fault_stats().ops_delayed, 1u);
}

TEST_F(FaultInjectionTest, DuplicateAtomicIsDedupedByTransport) {
  // PSN dedup: a duplicated FETCH_ADD must not double-apply.
  std::uint64_t word = 100;
  auto word_span = std::span<std::byte>(
      reinterpret_cast<std::byte*>(&word), sizeof(word));
  const MemoryRegion& word_mr =
      server_.pd().Register(word_span, access::kAll);

  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDuplicate;
  rule.opcode = Opcode::kFetchAdd;
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  ASSERT_TRUE(client_qp_
                  .PostFetchAdd(9, word_mr.remote_addr(), word_mr.rkey(),
                                -10)
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);  // exactly one completion
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(wcs[0].atomic_result, 100u);
  EXPECT_EQ(word, 90u);  // applied once, not twice
  EXPECT_EQ(fabric_.fault_stats().ops_duplicated, 1u);
}

TEST_F(FaultInjectionTest, DuplicateWriteIsIdempotent) {
  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDuplicate;
  rule.opcode = Opcode::kWrite;
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  std::vector<std::byte> payload(64, std::byte{0xAB});
  client_.pd().Register(std::span<std::byte>(payload),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostWrite(2, std::span<const std::byte>(payload),
                             remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);  // one completion despite two deliveries
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(remote_[0], std::byte{0xAB});
  EXPECT_EQ(fabric_.fault_stats().ops_duplicated, 1u);
}

TEST_F(FaultInjectionTest, MaxTriggersDisarmsARule) {
  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDrop;
  rule.opcode = Opcode::kRead;
  rule.max_triggers = 1;
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  sim_.Run();
  ASSERT_TRUE(client_qp_
                  .PostRead(2, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRetryExceeded);
  EXPECT_TRUE(wcs[1].ok());  // the rule is spent
}

TEST_F(FaultInjectionTest, TimeWindowGatesARule) {
  FaultPlan plan;
  FaultRule rule;
  rule.action = FaultAction::kDrop;
  rule.opcode = Opcode::kRead;
  rule.from = Micros(100);
  rule.until = Micros(200);
  plan.Add(rule);
  fabric_.InstallFaultPlan(plan);

  // Before the window: untouched.
  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  sim_.Run();
  // Inside the window: dropped.
  sim_.ScheduleAt(Micros(150), [this] {
    ASSERT_TRUE(client_qp_
                    .PostRead(2, std::span<std::byte>(local_),
                              remote_mr_->remote_addr(), remote_mr_->rkey())
                    .ok());
  });
  // After the window: untouched again.
  sim_.ScheduleAt(Micros(300), [this] {
    ASSERT_TRUE(client_qp_
                    .PostRead(3, std::span<std::byte>(local_),
                              remote_mr_->remote_addr(), remote_mr_->rkey())
                    .ok());
  });
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 3u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(wcs[1].status, WcStatus::kRetryExceeded);
  EXPECT_TRUE(wcs[2].ok());
}

TEST_F(FaultInjectionTest, FailedQpRejectsPostsAndFlushesInFlight) {
  FaultPlan plan;
  plan.FailQpAt(client_qp_.id(), Micros(1));
  fabric_.InstallFaultPlan(plan);

  // In flight across the failure instant: the success completion is
  // converted to a flush error, exactly like a QP draining in error state.
  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kFlushError);
  EXPECT_EQ(fabric_.fault_stats().flushed_completions, 1u);
  EXPECT_EQ(client_qp_.state(), QpState::kError);

  // New posts are rejected outright.
  const Status s = client_qp_.PostRead(2, std::span<std::byte>(local_),
                                       remote_mr_->remote_addr(),
                                       remote_mr_->rkey());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultInjectionTest, CrashedResponderTimesOutInitiators) {
  fabric_.CrashNode(server_.id());
  EXPECT_TRUE(fabric_.IsCrashed(server_.id()));

  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRetryExceeded);
  EXPECT_GE(fabric_.fault_stats().dead_target_naks, 1u);
}

TEST_F(FaultInjectionTest, RestartBumpsIncarnationAndAllowsFreshQps) {
  fabric_.CrashNode(client_.id());
  const std::uint32_t before = client_.incarnation();
  fabric_.RestartNode(client_.id());
  EXPECT_FALSE(fabric_.IsCrashed(client_.id()));
  EXPECT_EQ(client_.incarnation(), before + 1);

  // Old QPs stay dead (error state survives the restart)...
  EXPECT_EQ(client_qp_.state(), QpState::kError);
  EXPECT_FALSE(client_qp_
                   .PostRead(1, std::span<std::byte>(local_),
                             remote_mr_->remote_addr(), remote_mr_->rkey())
                   .ok());
  // ...but fresh QPs work.
  auto& cq = client_.CreateCq();
  auto& scq = server_.CreateCq();
  auto& qp = client_.CreateQp(cq, cq);
  auto& sqp = server_.CreateQp(scq, scq);
  fabric_.Connect(qp, sqp);
  ASSERT_TRUE(qp.PostRead(2, std::span<std::byte>(local_),
                          remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  auto wcs = RunAndPoll(cq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(local_[0], std::byte{0x5A});
}

TEST_F(FaultInjectionTest, PauseDefersAndResumeReplaysInOrder) {
  fabric_.PauseNode(server_.id());
  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  ASSERT_TRUE(client_qp_
                  .PostRead(2, std::span<std::byte>(local_),
                            remote_mr_->remote_addr(), remote_mr_->rkey())
                  .ok());
  sim_.RunUntil(Millis(1));
  EXPECT_TRUE(client_cq_.Poll(4).empty());  // held at the partition
  EXPECT_GE(fabric_.fault_stats().deferred_ops, 2u);

  fabric_.ResumeNode(server_.id());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_TRUE(wcs[1].ok());
  EXPECT_EQ(wcs[0].wr_id, 1u);  // replayed in arrival order
  EXPECT_EQ(wcs[1].wr_id, 2u);
  EXPECT_EQ(local_[0], std::byte{0x5A});
}

TEST_F(FaultInjectionTest, ScheduledNodeEventsFireFromThePlan) {
  FaultPlan plan;
  plan.CrashAt(server_.id(), Micros(50)).RestartAt(server_.id(), Micros(90));
  fabric_.InstallFaultPlan(plan);

  int crashes = 0;
  int restarts = 0;
  fabric_.SetNodeFaultHook([&](NodeId, Fabric::NodeFault fault) {
    if (fault == Fabric::NodeFault::kCrash) ++crashes;
    if (fault == Fabric::NodeFault::kRestart) ++restarts;
  });
  sim_.RunUntil(Micros(60));
  EXPECT_TRUE(fabric_.IsCrashed(server_.id()));
  sim_.RunUntil(Micros(100));
  EXPECT_FALSE(fabric_.IsCrashed(server_.id()));
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
}

// ---------------------------------------------------------------------------
// Determinism: identical (plan, seed, workload) => identical trace.
// ---------------------------------------------------------------------------

std::string CompletionTrace(std::uint64_t fabric_seed,
                            std::uint64_t plan_seed) {
  sim::Simulator sim;
  Fabric fabric(sim, net::ModelParams{}, fabric_seed);
  Node& server = fabric.AddNode("server", NodeRole::kData);
  Node& client = fabric.AddNode("client");
  auto& cq = client.CreateCq();
  auto& scq = server.CreateCq();
  auto& qp = client.CreateQp(cq, cq);
  auto& sqp = server.CreateQp(scq, scq);
  fabric.Connect(qp, sqp);

  std::vector<std::byte> remote(64, std::byte{0x77});
  const MemoryRegion& mr =
      server.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(64);
  client.pd().Register(std::span<std::byte>(local),
                       access::kLocalRead | access::kLocalWrite);

  FaultPlan plan;
  plan.seed = plan_seed;
  FaultRule drop;
  drop.action = FaultAction::kDrop;
  drop.probability = 0.3;
  plan.Add(drop);
  FaultRule delay;
  delay.action = FaultAction::kDelay;
  delay.probability = 0.5;
  delay.delay = 2'000;
  plan.Add(delay);
  FaultRule dup;
  dup.action = FaultAction::kDuplicate;
  dup.probability = 0.25;
  dup.opcode = Opcode::kWrite;
  plan.Add(dup);
  fabric.InstallFaultPlan(plan);

  std::ostringstream trace;
  cq.SetNotify([&](const WorkCompletion& wc) {
    trace << wc.wr_id << ':' << ToString(wc.status) << '@' << wc.timestamp
          << ';';
  });

  // A mixed deterministic workload: alternating READs and WRITEs on a
  // fixed schedule.
  for (std::uint64_t i = 0; i < 64; ++i) {
    sim.ScheduleAt(static_cast<SimTime>(i) * Micros(20), [&, i] {
      if (i % 2 == 0) {
        (void)qp.PostRead(i, std::span<std::byte>(local), mr.remote_addr(),
                          mr.rkey());
      } else {
        (void)qp.PostWrite(i, std::span<const std::byte>(local),
                           mr.remote_addr(), mr.rkey());
      }
    });
  }
  sim.Run();
  trace << "|evaluated=" << fabric.injector()->stats().evaluated
        << ",drops=" << fabric.injector()->stats().drops
        << ",delays=" << fabric.injector()->stats().delays
        << ",dups=" << fabric.injector()->stats().duplicates;
  return trace.str();
}

TEST(FaultDeterminism, IdenticalSeedsReproduceTheTraceBitForBit) {
  const std::string a = CompletionTrace(11, 42);
  const std::string b = CompletionTrace(11, 42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FaultDeterminism, DifferentPlanSeedsDiverge) {
  // 64 ops × three probabilistic rules: the chance two seeds agree on
  // every draw is negligible.
  const std::string a = CompletionTrace(11, 42);
  const std::string b = CompletionTrace(11, 43);
  EXPECT_NE(a, b);
}

TEST(FaultDeterminism, ProbabilityOneRulesConsumeNoRandomness) {
  // Appending a deterministic (p = 1) rule must not perturb the random
  // draws of the probabilistic rules — only add its own effect. Verify by
  // checking a p=1 delay shifts every completion without changing WHICH
  // ops the probabilistic drop rule hits.
  auto drops_of = [](bool with_deterministic_delay) {
    sim::Simulator sim;
    Fabric fabric(sim, net::ModelParams{}, 5);
    Node& server = fabric.AddNode("server", NodeRole::kData);
    Node& client = fabric.AddNode("client");
    auto& cq = client.CreateCq();
    auto& scq = server.CreateCq();
    auto& qp = client.CreateQp(cq, cq);
    auto& sqp = server.CreateQp(scq, scq);
    fabric.Connect(qp, sqp);
    std::vector<std::byte> remote(64);
    const MemoryRegion& mr =
        server.pd().Register(std::span<std::byte>(remote), access::kAll);
    std::vector<std::byte> local(64);
    client.pd().Register(std::span<std::byte>(local),
                         access::kLocalRead | access::kLocalWrite);

    FaultPlan plan;
    plan.seed = 1234;
    if (with_deterministic_delay) {
      FaultRule delay;
      delay.action = FaultAction::kDelay;
      delay.delay = 1'000;  // p = 1: no randomness consumed
      plan.Add(delay);
    }
    FaultRule drop;
    drop.action = FaultAction::kDrop;
    drop.probability = 0.4;
    plan.Add(drop);
    fabric.InstallFaultPlan(plan);

    std::vector<std::uint64_t> dropped;
    cq.SetNotify([&](const WorkCompletion& wc) {
      if (wc.status == WcStatus::kRetryExceeded) dropped.push_back(wc.wr_id);
    });
    for (std::uint64_t i = 0; i < 48; ++i) {
      sim.ScheduleAt(static_cast<SimTime>(i) * Micros(20), [&, i] {
        (void)qp.PostRead(i, std::span<std::byte>(local), mr.remote_addr(),
                          mr.rkey());
      });
    }
    sim.Run();
    return dropped;
  };

  EXPECT_EQ(drops_of(false), drops_of(true));
}

}  // namespace
}  // namespace haechi::rdma
