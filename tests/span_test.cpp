// Span pipeline tests: hand-computed stage attribution on canonical event
// sequences, truncation accounting, the SpanProfile percentile table's
// determinism (the `haechi_audit --spans` contract: same seed => byte
// identical tables), the per-period span histograms in the metrics
// registry, and the structural agreement between the simulated and the
// concurrent threaded runtime (both produce the same five-stage spans with
// the same internal identities). Under HAECHI_TRACE=OFF only the stub
// contract is checked.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using obs::ActorKind;
using obs::EventType;
using obs::IoSpan;
using obs::SpanStage;
using obs::TraceEvent;

std::int64_t Stage(const IoSpan& span, SpanStage stage) {
  return span.stage_ns[static_cast<std::size_t>(stage)];
}

#if HAECHI_TRACE_ENABLED

/// Builds engine events in emission order with dense seqs.
class EventBuilder {
 public:
  void Emit(SimTime t, std::uint32_t actor, EventType type, std::int64_t a = 0,
            std::int64_t b = 0, std::int64_t c = 0) {
    TraceEvent event;
    event.time = t;
    event.seq = seq_++;
    event.type = type;
    event.actor_kind = ActorKind::kEngine;
    event.actor = actor;
    event.period = 1;
    event.a = a;
    event.b = b;
    event.c = c;
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t seq_ = 0;
};

TEST(SpanAssembler, AttributesFetchQueueAndServiceOnACanonicalQuintet) {
  EventBuilder b;
  b.Emit(100, 0, EventType::kIoQueued, 7, 1);
  b.Emit(150, 0, EventType::kTokenFetch, 50);
  b.Emit(250, 0, EventType::kTokenFetchDone, 900, 50);
  b.Emit(300, 0, EventType::kIoIssue, 7, 1, 0);
  b.Emit(900, 0, EventType::kIoComplete, 7, 0);

  obs::SpanAssemblyStats stats;
  const std::vector<IoSpan> spans = obs::AssembleSpans(b.events(), &stats);
  ASSERT_EQ(stats.spans, 1u);
  EXPECT_EQ(stats.orphan_events, 0u);
  const IoSpan& span = spans.front();
  EXPECT_EQ(span.engine, 0u);
  EXPECT_EQ(span.io_id, 7u);
  EXPECT_EQ(span.period, 1u);
  EXPECT_EQ(span.token_source, 1);
  EXPECT_EQ(span.queued_at, 100);
  EXPECT_EQ(span.issued_at, 300);
  EXPECT_EQ(span.completed_at, 900);
  EXPECT_EQ(Stage(span, SpanStage::kAdmit), 0);
  EXPECT_EQ(Stage(span, SpanStage::kTokenFetch), 100);  // 150..250
  EXPECT_EQ(Stage(span, SpanStage::kConvertWait), 0);
  EXPECT_EQ(Stage(span, SpanStage::kQueue), 100);  // 200 elapsed - 100 fetch
  EXPECT_EQ(Stage(span, SpanStage::kNicService), 600);
  EXPECT_EQ(span.Total(), span.completed_at - span.queued_at);
}

TEST(SpanAssembler, PoolEmptyOpensConvertWaitUntilThePeriodBoundary) {
  EventBuilder b;
  b.Emit(100, 3, EventType::kIoQueued, 0, 1);
  b.Emit(120, 3, EventType::kTokenFetch, 50);
  b.Emit(180, 3, EventType::kPoolEmpty);           // fetch 60, wait opens
  b.Emit(380, 3, EventType::kEnginePeriodStart);   // wait closes at 200
  b.Emit(400, 3, EventType::kTokenFetch, 50);
  b.Emit(450, 3, EventType::kTokenFetchDone, 900, 50);  // fetch 60+50
  b.Emit(500, 3, EventType::kIoIssue, 0, 0, 0);
  b.Emit(600, 3, EventType::kIoComplete, 0, 0);

  obs::SpanAssemblyStats stats;
  const std::vector<IoSpan> spans = obs::AssembleSpans(b.events(), &stats);
  ASSERT_EQ(stats.spans, 1u);
  const IoSpan& span = spans.front();
  EXPECT_EQ(span.token_source, 0);
  EXPECT_EQ(Stage(span, SpanStage::kTokenFetch), 110);
  EXPECT_EQ(Stage(span, SpanStage::kConvertWait), 200);
  EXPECT_EQ(Stage(span, SpanStage::kQueue), 400 - 110 - 200);
  EXPECT_EQ(Stage(span, SpanStage::kNicService), 100);
}

TEST(SpanAssembler, RetryBackoffStaysInsideTheFetchInterval) {
  // kTokenFetchFail must not close the fetch interval: the whole
  // post/fail/backoff/repost window counts as token_fetch (step T4).
  EventBuilder b;
  b.Emit(0, 0, EventType::kIoQueued, 0, 1);
  b.Emit(10, 0, EventType::kTokenFetch, 50);
  b.Emit(30, 0, EventType::kTokenFetchFail, 20);
  b.Emit(60, 0, EventType::kTokenFetch, 50);
  b.Emit(90, 0, EventType::kTokenFetchDone, 900, 50);
  b.Emit(100, 0, EventType::kIoIssue, 0, 0, 0);
  b.Emit(110, 0, EventType::kIoComplete, 0, 0);

  const std::vector<IoSpan> spans = obs::AssembleSpans(b.events());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(Stage(spans.front(), SpanStage::kTokenFetch), 80);  // 10..90
  EXPECT_EQ(Stage(spans.front(), SpanStage::kQueue), 20);
}

TEST(SpanAssembler, TruncatedStreamsLandInDropCountersNotSpans) {
  EventBuilder b;
  b.Emit(10, 0, EventType::kIoIssue, 99, 0, 0);     // no matching queue
  b.Emit(20, 0, EventType::kIoComplete, 98, 0);     // no matching issue
  b.Emit(30, 0, EventType::kIoQueued, 1, 1);        // never issues
  b.Emit(40, 0, EventType::kIoQueued, 2, 2);
  b.Emit(50, 0, EventType::kIoIssue, 2, 0, 1);      // FIFO skip: io 1 stuck
  b.Emit(60, 0, EventType::kEngineStop);            // drops io 2 in flight

  obs::SpanAssemblyStats stats;
  const std::vector<IoSpan> spans = obs::AssembleSpans(b.events(), &stats);
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(stats.spans, 0u);
  EXPECT_EQ(stats.orphan_events, 2u);
  EXPECT_EQ(stats.dropped_unissued, 1u);
  EXPECT_EQ(stats.dropped_uncompleted, 1u);
}

TEST(SpanProfile, TableIsDeterministicAndRollsUpAllEngines) {
  EventBuilder b;
  for (std::uint32_t engine = 0; engine < 2; ++engine) {
    for (std::uint64_t io = 0; io < 8; ++io) {
      const auto t0 = static_cast<SimTime>(1000 * io + engine);
      b.Emit(t0, engine, EventType::kIoQueued,
             static_cast<std::int64_t>(io), 1);
      b.Emit(t0 + 100, engine, EventType::kIoIssue,
             static_cast<std::int64_t>(io), 0, 0);
      b.Emit(t0 + 300, engine, EventType::kIoComplete,
             static_cast<std::int64_t>(io), 0);
    }
  }
  const std::vector<IoSpan> spans = obs::AssembleSpans(b.events());
  ASSERT_EQ(spans.size(), 16u);

  obs::SpanProfile first;
  first.AddAll(spans);
  obs::SpanProfile second;
  second.AddAll(spans);
  const std::string table = first.Table();
  EXPECT_EQ(table, second.Table());
  EXPECT_EQ(first.SpanCount(), 16u);
  // Per-engine rows plus the 'all' rollup, each with the 6 stage rows
  // (5 stages + total).
  EXPECT_NE(table.find("nic_service"), std::string::npos);
  EXPECT_NE(table.find("all"), std::string::npos);
  ASSERT_NE(first.StageHistogram(0, SpanStage::kNicService), nullptr);
  EXPECT_EQ(first.StageHistogram(0, SpanStage::kNicService)->Count(), 8u);
}

TEST(SpanMetrics, SnapshotHistogramsEmitsTailQuantilesForThePrefixOnly) {
  obs::MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.Record("span.stage.queue", i * 1000);
  }
  metrics.Record("other.histogram", 5);
  metrics.SnapshotHistograms(3, "span.stage.");

  bool saw_p999 = false;
  for (const auto& row : metrics.snapshots()) {
    EXPECT_EQ(row.period, 3u);
    EXPECT_EQ(row.name.rfind("span.stage.", 0), 0u) << row.name;
    if (row.kind == "histogram_p999") saw_p999 = true;
    if (row.kind == "histogram_count") EXPECT_EQ(row.value, 100.0);
  }
  EXPECT_TRUE(saw_p999);
}

harness::ExperimentConfig DetailConfig(std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.01;
  config.warmup = Seconds(1);
  config.measure_periods = 2;
  config.records = 256;
  config.qos.token_batch = 10;
  config.seed = seed;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.trace.enabled = true;
  config.trace.detail = true;
  config.trace.ring_capacity = 1u << 20;
  return config;
}

TEST(SpanEndToEnd, SameSeedRunsProduceByteIdenticalProfileTables) {
  harness::Experiment first(DetailConfig(17));
  const harness::ExperimentResult result_a = first.Run();
  harness::Experiment second(DetailConfig(17));
  const harness::ExperimentResult result_b = second.Run();

  ASSERT_FALSE(result_a.spans.empty());
  EXPECT_EQ(result_a.span_stats.spans, result_a.spans.size());
  EXPECT_EQ(result_a.spans.size(), result_b.spans.size());

  obs::SpanProfile profile_a;
  profile_a.AddAll(result_a.spans);
  obs::SpanProfile profile_b;
  profile_b.AddAll(result_b.spans);
  EXPECT_EQ(profile_a.Table(), profile_b.Table());

  // Reassembling from the recorder reproduces the harness's own spans —
  // the `haechi_audit --spans` path sees the same stream.
  ASSERT_NE(first.recorder(), nullptr);
  obs::SpanAssemblyStats stats;
  const std::vector<IoSpan> reassembled =
      obs::AssembleSpans(first.recorder()->Merged(), &stats);
  EXPECT_EQ(stats.spans, result_a.span_stats.spans);
  obs::SpanProfile reprofile;
  reprofile.AddAll(reassembled);
  EXPECT_EQ(reprofile.Table(), profile_a.Table());
}

void CheckSpanStructure(const std::vector<IoSpan>& spans) {
  ASSERT_FALSE(spans.empty());
  bool saw_service = false;
  for (const IoSpan& span : spans) {
    // Admission is synchronous in both runtimes.
    EXPECT_EQ(Stage(span, SpanStage::kAdmit), 0);
    std::int64_t sum = 0;
    for (std::size_t s = 0; s < obs::kSpanStages; ++s) {
      EXPECT_GE(span.stage_ns[s], 0);
      sum += span.stage_ns[s];
    }
    // Stage attribution tiles queued->completed exactly.
    EXPECT_EQ(sum, span.completed_at - span.queued_at);
    EXPECT_LE(span.queued_at, span.issued_at);
    EXPECT_LE(span.issued_at, span.completed_at);
    EXPECT_TRUE(span.token_source == 0 || span.token_source == 1);
    saw_service |= Stage(span, SpanStage::kNicService) > 0;
  }
  EXPECT_TRUE(saw_service);
}

TEST(SpanEndToEnd, SimulatedAndThreadedRuntimesAgreeOnStageStructure) {
  harness::Experiment sim_experiment(DetailConfig(23));
  const harness::ExperimentResult sim_result = sim_experiment.Run();
  CheckSpanStructure(sim_result.spans);

  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.qos.period = Millis(100);
  config.qos.token_tick = Millis(2);
  config.qos.report_interval = Millis(2);
  config.qos.check_interval = Millis(2);
  config.qos.token_batch = 50;
  config.profiled_global_iops = 100000;
  config.profiled_local_iops = 60000;
  config.records = 256;
  config.warmup = Millis(100);
  config.measure_periods = 2;
  config.runtime_workers = 2;
  for (const std::int64_t r : {3000, 2000}) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + 1000;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.trace.enabled = true;
  config.trace.detail = true;
  config.trace.ring_capacity = 1u << 20;
  harness::ThreadedExperiment threaded(std::move(config));
  threaded.Run();
  ASSERT_NE(threaded.recorder(), nullptr);
  const std::vector<IoSpan> threaded_spans =
      obs::AssembleSpans(threaded.recorder()->Merged());
  CheckSpanStructure(threaded_spans);
}

#else  // !HAECHI_TRACE_ENABLED

TEST(SpanAssembler, NotraceStubReturnsEmptyAndAdvertisesItself) {
  static_assert(!obs::kSpanAssemblyCompiled);
  obs::SpanAssemblyStats stats;
  stats.orphan_events = 99;  // the stub must reset incoming stats
  const std::vector<TraceEvent> events(3);
  EXPECT_TRUE(obs::AssembleSpans(events, &stats).empty());
  EXPECT_EQ(stats.spans, 0u);
  EXPECT_EQ(stats.orphan_events, 0u);
}

#endif  // HAECHI_TRACE_ENABLED

}  // namespace
}  // namespace haechi
