// Unit tests for the key-value store: local puts/gets, one-sided GET/PUT
// through the fabric, seqlock torn-read detection and retry, payload
// validation, and the two-sided RPC path.
#include <gtest/gtest.h>

#include <cstring>

#include "kvstore/client.hpp"
#include "kvstore/server.hpp"
#include "sim/simulator.hpp"

namespace haechi::kvstore {
namespace {

class KvTest : public ::testing::Test {
 protected:
  KvTest()
      : fabric_(sim_, net::ModelParams{}, 11),
        server_node_(fabric_.AddNode("server", rdma::NodeRole::kData)),
        client_node_(fabric_.AddNode("client")),
        server_(server_node_, {.record_count = 64, .payload_bytes = 4096}),
        client_cq_(client_node_.CreateCq()),
        server_cq_(server_node_.CreateCq()),
        client_qp_(client_node_.CreateQp(client_cq_, client_cq_)),
        server_qp_(server_node_.CreateQp(server_cq_, server_cq_)) {
    fabric_.Connect(client_qp_, server_qp_);
    server_.PopulateDeterministic();
  }

  KvClient MakeClient(KvClient::Config config = {}) {
    return KvClient(client_node_, client_qp_, server_.view(), config);
  }

  std::vector<std::byte> Pattern(std::uint64_t key) {
    std::vector<std::byte> v(server_.config().payload_bytes);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = KvServer::PatternByte(key, i);
    }
    return v;
  }

  sim::Simulator sim_;
  rdma::Fabric fabric_;
  rdma::Node& server_node_;
  rdma::Node& client_node_;
  KvServer server_;
  rdma::CompletionQueue& client_cq_;
  rdma::CompletionQueue& server_cq_;
  rdma::QueuePair& client_qp_;
  rdma::QueuePair& server_qp_;
};

TEST_F(KvTest, LocalPutGetRoundTrip) {
  std::vector<std::byte> value(4096, std::byte{0x5A});
  ASSERT_TRUE(server_.Put(7, value).ok());
  auto got = server_.Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), value);
}

TEST_F(KvTest, LocalPutValidatesArguments) {
  std::vector<std::byte> wrong_size(10);
  EXPECT_EQ(server_.Put(7, wrong_size).code(), StatusCode::kInvalidArgument);
  std::vector<std::byte> value(4096);
  EXPECT_EQ(server_.Put(9999, value).code(), StatusCode::kNotFound);
  EXPECT_EQ(server_.Get(9999).status().code(), StatusCode::kNotFound);
}

TEST_F(KvTest, OneSidedGetReturnsPopulatedData) {
  KvClient client = MakeClient({.validate_payload = true});
  bool done = false;
  ASSERT_TRUE(client
                  .GetOneSided(5,
                               [&](const KvClient::Completion& c) {
                                 EXPECT_TRUE(c.status.ok());
                                 EXPECT_EQ(c.retries, 0u);
                                 ASSERT_EQ(c.data.size(), 4096u);
                                 EXPECT_EQ(c.data[0],
                                           KvServer::PatternByte(5, 0));
                                 done = true;
                               })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(client.OpsCompleted(), 1u);
}

TEST_F(KvTest, OneSidedGetOutOfRangeKeyFailsFast) {
  KvClient client = MakeClient();
  const Status s = client.GetOneSided(999999, [](const auto&) {});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(KvTest, OneSidedPutVisibleToSubsequentGet) {
  KvClient client = MakeClient();
  std::vector<std::byte> value(4096, std::byte{0xC3});
  bool put_done = false;
  ASSERT_TRUE(client
                  .PutOneSided(3, value,
                               [&](const KvClient::Completion& c) {
                                 EXPECT_TRUE(c.status.ok());
                                 put_done = true;
                               })
                  .ok());
  sim_.Run();
  ASSERT_TRUE(put_done);
  auto got = server_.Get(3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), value);

  bool get_done = false;
  ASSERT_TRUE(client
                  .GetOneSided(3,
                               [&](const KvClient::Completion& c) {
                                 EXPECT_TRUE(c.status.ok());
                                 EXPECT_EQ(c.data[0], std::byte{0xC3});
                                 get_done = true;
                               })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(get_done);
}

TEST_F(KvTest, TornReadIsRetriedTransparently) {
  KvClient client = MakeClient();
  // Corrupt record 2's seqlock (as if a writer were mid-update), then
  // repair it while the first READ is in flight: the client's retry then
  // observes a consistent frame.
  auto view = server_.view();
  auto* head = reinterpret_cast<std::byte*>(view.RecordAddr(2));
  std::uint64_t odd = 1;
  std::memcpy(head, &odd, sizeof(odd));

  bool done = false;
  ASSERT_TRUE(client
                  .GetOneSided(2,
                               [&](const KvClient::Completion& c) {
                                 EXPECT_TRUE(c.status.ok());
                                 EXPECT_GE(c.retries, 1u);
                                 done = true;
                               })
                  .ok());
  // Repair after the first read's snapshot (client NIC 2.5us + link 1.5us
  // + server 0.64us ≈ 4.7us) but before the retry's snapshot (~11us).
  sim_.ScheduleAfter(Micros(6), [&] {
    std::uint64_t even = 2;
    std::memcpy(head, &even, sizeof(even));
    std::memcpy(head + kVersionBytes + 4096, &even, sizeof(even));
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(client.TornReadRetries(), 1u);
}

TEST_F(KvTest, PersistentlyTornReadFailsAfterRetries) {
  KvClient client = MakeClient({.read_retry_limit = 2});
  auto view = server_.view();
  auto* head = reinterpret_cast<std::byte*>(view.RecordAddr(4));
  std::uint64_t odd = 11;
  std::memcpy(head, &odd, sizeof(odd));

  Status final_status;
  ASSERT_TRUE(client
                  .GetOneSided(4,
                               [&](const KvClient::Completion& c) {
                                 final_status = c.status;
                               })
                  .ok());
  sim_.Run();
  EXPECT_EQ(final_status.code(), StatusCode::kAborted);
  EXPECT_GE(client.TornReadRetries(), 2u);
}

TEST_F(KvTest, SlotPoolExhaustionFailsFast) {
  KvClient client = MakeClient({.max_outstanding = 2});
  ASSERT_TRUE(client.GetOneSided(0, [](const auto&) {}).ok());
  ASSERT_TRUE(client.GetOneSided(1, [](const auto&) {}).ok());
  const Status s = client.GetOneSided(2, [](const auto&) {});
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  sim_.Run();
  // Slots recycle after completion.
  EXPECT_TRUE(client.GetOneSided(3, [](const auto&) {}).ok());
  sim_.Run();
}

TEST_F(KvTest, SharedSlotModeAllowsDeepPipelines) {
  fabric_.set_copy_payloads(false);
  KvClient client = MakeClient({.max_outstanding = 2});
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        client.GetOneSided(0, [&](const auto&) { ++completed; }).ok());
  }
  sim_.Run();
  EXPECT_EQ(completed, 100);
}

TEST_F(KvTest, RpcGetRoundTrip) {
  auto& c_rpc_cq = client_node_.CreateCq();
  auto& c_rpc_recv = client_node_.CreateCq();
  auto& s_rpc_cq = server_node_.CreateCq();
  auto& s_rpc_recv = server_node_.CreateCq();
  auto& c_rpc = client_node_.CreateQp(c_rpc_cq, c_rpc_recv);
  auto& s_rpc = server_node_.CreateQp(s_rpc_cq, s_rpc_recv);
  fabric_.Connect(c_rpc, s_rpc);
  server_.BindRpcEndpoint(s_rpc);

  KvClient client = MakeClient();
  client.BindRpcQp(c_rpc);

  bool done = false;
  ASSERT_TRUE(client
                  .GetRpc(6,
                          [&](const KvClient::Completion& c) {
                            EXPECT_TRUE(c.status.ok());
                            ASSERT_EQ(c.data.size(), 4096u);
                            EXPECT_EQ(c.data[1], KvServer::PatternByte(6, 1));
                            done = true;
                          })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server_.RpcsServed(), 1u);
}

TEST_F(KvTest, RpcGetMissingKeyReturnsNotFound) {
  auto& c_rpc_cq = client_node_.CreateCq();
  auto& c_rpc_recv = client_node_.CreateCq();
  auto& s_rpc_cq = server_node_.CreateCq();
  auto& s_rpc_recv = server_node_.CreateCq();
  auto& c_rpc = client_node_.CreateQp(c_rpc_cq, c_rpc_recv);
  auto& s_rpc = server_node_.CreateQp(s_rpc_cq, s_rpc_recv);
  fabric_.Connect(c_rpc, s_rpc);
  server_.BindRpcEndpoint(s_rpc);
  KvClient client = MakeClient();
  client.BindRpcQp(c_rpc);

  // Key out of the client's known range fails fast...
  EXPECT_EQ(client.GetRpc(1 << 20, [](const auto&) {}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.GetRpc(63, [](const auto&) {}).code(), StatusCode::kOk);
  sim_.Run();
}

TEST_F(KvTest, RpcWithoutBindingFails) {
  KvClient client = MakeClient();
  EXPECT_EQ(client.GetRpc(1, [](const auto&) {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KvTest, ManyConcurrentRpcsCompleteInOrder) {
  auto& c_rpc_cq = client_node_.CreateCq();
  auto& c_rpc_recv = client_node_.CreateCq();
  auto& s_rpc_cq = server_node_.CreateCq();
  auto& s_rpc_recv = server_node_.CreateCq();
  auto& c_rpc = client_node_.CreateQp(c_rpc_cq, c_rpc_recv);
  auto& s_rpc = server_node_.CreateQp(s_rpc_cq, s_rpc_recv);
  fabric_.Connect(c_rpc, s_rpc);
  server_.BindRpcEndpoint(s_rpc);
  KvClient client = MakeClient();
  client.BindRpcQp(c_rpc);

  std::vector<std::uint64_t> completed_keys;
  for (std::uint64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(client
                    .GetRpc(k,
                            [&completed_keys, k](const auto& c) {
                              EXPECT_TRUE(c.status.ok());
                              completed_keys.push_back(k);
                            })
                    .ok());
  }
  sim_.Run();
  ASSERT_EQ(completed_keys.size(), 32u);
  EXPECT_TRUE(std::is_sorted(completed_keys.begin(), completed_keys.end()));
  EXPECT_EQ(server_.RpcsServed(), 32u);
}

TEST_F(KvTest, RpcPutRoundTrip) {
  auto& c_rpc_cq = client_node_.CreateCq();
  auto& c_rpc_recv = client_node_.CreateCq();
  auto& s_rpc_cq = server_node_.CreateCq();
  auto& s_rpc_recv = server_node_.CreateCq();
  auto& c_rpc = client_node_.CreateQp(c_rpc_cq, c_rpc_recv);
  auto& s_rpc = server_node_.CreateQp(s_rpc_cq, s_rpc_recv);
  fabric_.Connect(c_rpc, s_rpc);
  server_.BindRpcEndpoint(s_rpc);
  KvClient client = MakeClient();
  client.BindRpcQp(c_rpc);

  std::vector<std::byte> value(4096, std::byte{0x77});
  bool put_done = false;
  ASSERT_TRUE(client
                  .PutRpc(9, value,
                          [&](const KvClient::Completion& c) {
                            EXPECT_TRUE(c.status.ok());
                            put_done = true;
                          })
                  .ok());
  sim_.Run();
  ASSERT_TRUE(put_done);
  auto got = server_.Get(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), value);

  // And the new value is visible to a subsequent one-sided GET.
  bool get_done = false;
  ASSERT_TRUE(client
                  .GetOneSided(9,
                               [&](const KvClient::Completion& c) {
                                 EXPECT_TRUE(c.status.ok());
                                 EXPECT_EQ(c.data[100], std::byte{0x77});
                                 get_done = true;
                               })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(get_done);
}

TEST_F(KvTest, RpcPutValidatesArguments) {
  auto& c_rpc_cq = client_node_.CreateCq();
  auto& c_rpc_recv = client_node_.CreateCq();
  auto& s_rpc_cq = server_node_.CreateCq();
  auto& s_rpc_recv = server_node_.CreateCq();
  auto& c_rpc = client_node_.CreateQp(c_rpc_cq, c_rpc_recv);
  auto& s_rpc = server_node_.CreateQp(s_rpc_cq, s_rpc_recv);
  fabric_.Connect(c_rpc, s_rpc);
  server_.BindRpcEndpoint(s_rpc);
  KvClient client = MakeClient();

  std::vector<std::byte> value(4096);
  EXPECT_EQ(client.PutRpc(1, value, [](const auto&) {}).code(),
            StatusCode::kFailedPrecondition);  // not bound
  client.BindRpcQp(c_rpc);
  std::vector<std::byte> wrong(8);
  EXPECT_EQ(client.PutRpc(1, wrong, [](const auto&) {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.PutRpc(1 << 20, value, [](const auto&) {}).code(),
            StatusCode::kNotFound);
  sim_.Run();
}

TEST_F(KvTest, StoreViewAddressing) {
  const StoreView view = server_.view();
  EXPECT_EQ(view.record_count, 64u);
  EXPECT_EQ(view.payload_bytes, 4096u);
  EXPECT_EQ(view.stride(), 4096u + 16u);
  EXPECT_EQ(view.RecordAddr(1) - view.RecordAddr(0), view.stride());
}

}  // namespace
}  // namespace haechi::kvstore
