// Batched-fetch accounting properties of the threaded runtime, swept over
// the fetch-batch knob on a sharded pool, with the report lease armed and
// one scripted client crash:
//
//   * an engine can never hold more pool tokens than its FAAs posted:
//     tokens_from_pool <= (token_batch * fetch_batch) * faa_ops;
//   * every completed I/O consumed a token it owned:
//     completed_total <= tokens_from_reservation + tokens_from_pool;
//   * the monitor's per-period conservation identity stays EXACT on every
//     closed period — batching and sharding change how tokens move, never
//     how many exist;
//   * the crashed client's residual is reclaimed by the lease (work
//     conservation: unused remainder is converted, not leaked), and the
//     full A1-A9 audit stays green on the faulted trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"

namespace haechi {
namespace {

harness::ExperimentConfig PropertyConfig(std::int64_t fetch_batch,
                                         std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.qos.period = Millis(100);
  config.qos.token_tick = Millis(2);
  config.qos.report_interval = Millis(2);
  config.qos.check_interval = Millis(2);
  config.qos.token_batch = 10;
  config.qos.fetch_batch = fetch_batch;
  config.qos.pool_shards = 4;
  config.qos.pool_retry_interval = Millis(2);
  config.qos.faa_end_guard = Millis(20);
  // Lease armed: 6 check intervals (12 ms) of slot silence declares a
  // client dead and converts its residual claims.
  config.qos.report_lease_intervals = 6;
  config.profiled_global_iops = 20000;
  config.profiled_local_iops = 8000;
  config.records = 4096;
  config.warmup = Millis(200);
  config.measure_periods = 5;
  config.seed = seed;
  config.trace.enabled = true;
  config.trace.ring_capacity = 1u << 16;

  // Client 1's pool draw (demand - reservation = 145) is deliberately not
  // a multiple of any effective batch in the sweep (10, 40, 80), so the
  // crashed client always holds an unconsumed fetched-chain remainder —
  // exactly what the lease must reclaim.
  const std::int64_t reservations[] = {500, 400, 200, 100};
  const std::int64_t demands[] = {600, 545, 250, 150};
  for (std::size_t i = 0; i < 4; ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demands[i];
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }

  // Client 1 crashes mid-measurement and never restarts; its reservation
  // must flow back through the lease.
  harness::ExperimentConfig::ClientFault fault;
  fault.client = 1;
  fault.crash_at = config.warmup + 2 * config.qos.period +
                   config.qos.period / 2;
  fault.restart_at = kSimTimeMax;
  config.client_faults.push_back(fault);
  return config;
}

TEST(RuntimePropertyTest, BatchedFetchNeverLeaksTokensAcrossShardsAndCrash) {
  const std::int64_t fetch_batches[] = {1, 4, 8};
  std::int64_t reclaimed_across_sweep = 0;
  // The threaded runtime runs in real time, so whether the crashed client
  // dies holding a fetched-chain remainder depends on worker scheduling.
  // Every attempt checks the hard invariants (FAA bound, ledger, audit);
  // the sweep retries with fresh seeds until some arm observes a nonzero
  // residual, which makes the liveness assertion below robust to an
  // occasional zero-residual crash point.
  for (std::uint64_t attempt = 0;
       attempt < 4 && reclaimed_across_sweep == 0; ++attempt) {
  std::uint64_t seed = 7 + attempt * 101;
  for (const std::int64_t fetch_batch : fetch_batches) {
    SCOPED_TRACE("fetch_batch " + std::to_string(fetch_batch));
    const harness::ExperimentConfig config =
        PropertyConfig(fetch_batch, seed++);
    const std::int64_t effective_batch =
        config.qos.token_batch * fetch_batch;

    harness::ThreadedExperiment experiment(config);
    const harness::ThreadedExperimentResult result = experiment.Run();

    // Per-engine FAA bound and token-backed completion accounting.
    ASSERT_EQ(result.engine_stats.size(), config.clients.size());
    for (std::size_t i = 0; i < result.engine_stats.size(); ++i) {
      const auto& stats = result.engine_stats[i];
      EXPECT_LE(stats.tokens_from_pool,
                effective_batch * static_cast<std::int64_t>(stats.faa_ops))
          << "client " << i << " acquired more pool tokens than its FAAs "
          << "posted";
      EXPECT_LE(stats.completed_total,
                stats.tokens_from_reservation + stats.tokens_from_pool)
          << "client " << i << " completed I/Os without tokens";
    }

    // Exact conservation on every closed period, crash or not.
    for (const auto& ledger : result.ledger) {
      if (ledger.period >= result.monitor_stats.periods) continue;
      EXPECT_EQ(ledger.initial_pool + ledger.minted - ledger.granted,
                ledger.end_pool)
          << "ledger period " << ledger.period;
    }

    // The lease must have fired for the crashed client. The residual it
    // reclaims is the unconsumed tail of the last fetched chain; with
    // fetch_batch == 1 the worker drains every 10-token fetch in one
    // grant, so only the batched arms reliably leave a remainder — the
    // sweep-level assertion below pins that down.
    EXPECT_GE(result.monitor_stats.lease_expirations, 1u);
    EXPECT_GE(result.monitor_stats.reclaimed_tokens, 0);
    reclaimed_across_sweep += result.monitor_stats.reclaimed_tokens;

    // Full audit on the faulted trace: A5 switches to its banded form
    // around the crash, A9 excludes the crash window, everything else is
    // unchanged.
    ASSERT_NE(experiment.recorder(), nullptr);
    const obs::AuditReport report =
        obs::AuditTrace(experiment.recorder()->Merged());
    for (const auto& v : report.violations) {
      ADD_FAILURE() << "fetch_batch " << fetch_batch << ": " << v.check
                    << ": " << v.detail;
    }
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.guarantee_checks, 0u);
  }
  }
  // The crashed client's pool draws are not multiples of the batched
  // effective batches (40, 80), so some arm of some attempt must reclaim
  // a fetched-chain remainder through the lease.
  EXPECT_GT(reclaimed_across_sweep, 0)
      << "no arm of the fetch-batch sweep reclaimed residual tokens";
}

}  // namespace
}  // namespace haechi
