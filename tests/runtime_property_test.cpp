// Batched-fetch accounting properties of the threaded runtime, swept over
// the fetch-batch knob on a sharded pool, with the report lease armed and
// one scripted client crash:
//
//   * an engine can never hold more pool tokens than its FAAs posted:
//     tokens_from_pool <= (token_batch * fetch_batch) * faa_ops;
//   * every completed I/O consumed a token it owned:
//     completed_total <= tokens_from_reservation + tokens_from_pool;
//   * the monitor's per-period conservation identity stays EXACT on every
//     closed period — batching and sharding change how tokens move, never
//     how many exist;
//   * the crashed client's residual is reclaimed by the lease (work
//     conservation: unused remainder is converted, not leaked), and the
//     full A1-A9 audit stays green on the faulted trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/control/controller.hpp"
#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"

namespace haechi {
namespace {

harness::ExperimentConfig PropertyConfig(std::int64_t fetch_batch,
                                         std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.qos.period = Millis(100);
  config.qos.token_tick = Millis(2);
  config.qos.report_interval = Millis(2);
  config.qos.check_interval = Millis(2);
  config.qos.token_batch = 10;
  config.qos.fetch_batch = fetch_batch;
  config.qos.pool_shards = 4;
  config.qos.pool_retry_interval = Millis(2);
  config.qos.faa_end_guard = Millis(20);
  // Lease armed: 6 check intervals (12 ms) of slot silence declares a
  // client dead and converts its residual claims.
  config.qos.report_lease_intervals = 6;
  config.profiled_global_iops = 20000;
  config.profiled_local_iops = 8000;
  config.records = 4096;
  config.warmup = Millis(200);
  config.measure_periods = 5;
  config.seed = seed;
  config.trace.enabled = true;
  config.trace.ring_capacity = 1u << 16;

  // Client 1's pool draw (demand - reservation = 145) is deliberately not
  // a multiple of any effective batch in the sweep (10, 40, 80), so the
  // crashed client always holds an unconsumed fetched-chain remainder —
  // exactly what the lease must reclaim.
  const std::int64_t reservations[] = {500, 400, 200, 100};
  const std::int64_t demands[] = {600, 545, 250, 150};
  for (std::size_t i = 0; i < 4; ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demands[i];
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }

  // Client 1 crashes mid-measurement and never restarts; its reservation
  // must flow back through the lease.
  harness::ExperimentConfig::ClientFault fault;
  fault.client = 1;
  fault.crash_at = config.warmup + 2 * config.qos.period +
                   config.qos.period / 2;
  fault.restart_at = kSimTimeMax;
  config.client_faults.push_back(fault);
  return config;
}

TEST(RuntimePropertyTest, BatchedFetchNeverLeaksTokensAcrossShardsAndCrash) {
  const std::int64_t fetch_batches[] = {1, 4, 8};
  std::int64_t reclaimed_across_sweep = 0;
  // The threaded runtime runs in real time, so whether the crashed client
  // dies holding a fetched-chain remainder depends on worker scheduling.
  // Every attempt checks the hard invariants (FAA bound, ledger, audit);
  // the sweep retries with fresh seeds until some arm observes a nonzero
  // residual, which makes the liveness assertion below robust to an
  // occasional zero-residual crash point.
  for (std::uint64_t attempt = 0;
       attempt < 4 && reclaimed_across_sweep == 0; ++attempt) {
  std::uint64_t seed = 7 + attempt * 101;
  for (const std::int64_t fetch_batch : fetch_batches) {
    SCOPED_TRACE("fetch_batch " + std::to_string(fetch_batch));
    const harness::ExperimentConfig config =
        PropertyConfig(fetch_batch, seed++);
    const std::int64_t effective_batch =
        config.qos.token_batch * fetch_batch;

    harness::ThreadedExperiment experiment(config);
    const harness::ThreadedExperimentResult result = experiment.Run();

    // Per-engine FAA bound and token-backed completion accounting.
    ASSERT_EQ(result.engine_stats.size(), config.clients.size());
    for (std::size_t i = 0; i < result.engine_stats.size(); ++i) {
      const auto& stats = result.engine_stats[i];
      EXPECT_LE(stats.tokens_from_pool,
                effective_batch * static_cast<std::int64_t>(stats.faa_ops))
          << "client " << i << " acquired more pool tokens than its FAAs "
          << "posted";
      EXPECT_LE(stats.completed_total,
                stats.tokens_from_reservation + stats.tokens_from_pool)
          << "client " << i << " completed I/Os without tokens";
    }

    // Exact conservation on every closed period, crash or not.
    for (const auto& ledger : result.ledger) {
      if (ledger.period >= result.monitor_stats.periods) continue;
      EXPECT_EQ(ledger.initial_pool + ledger.minted - ledger.granted,
                ledger.end_pool)
          << "ledger period " << ledger.period;
    }

    // The lease must have fired for the crashed client. The residual it
    // reclaims is the unconsumed tail of the last fetched chain; with
    // fetch_batch == 1 the worker drains every 10-token fetch in one
    // grant, so only the batched arms reliably leave a remainder — the
    // sweep-level assertion below pins that down.
    EXPECT_GE(result.monitor_stats.lease_expirations, 1u);
    EXPECT_GE(result.monitor_stats.reclaimed_tokens, 0);
    reclaimed_across_sweep += result.monitor_stats.reclaimed_tokens;

    // Full audit on the faulted trace: A5 switches to its banded form
    // around the crash, A9 excludes the crash window, everything else is
    // unchanged.
    ASSERT_NE(experiment.recorder(), nullptr);
    const obs::AuditReport report =
        obs::AuditTrace(experiment.recorder()->Merged());
    for (const auto& v : report.violations) {
      ADD_FAILURE() << "fetch_batch " << fetch_batch << ": " << v.check
                    << ": " << v.detail;
    }
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.guarantee_checks, 0u);
  }
  }
  // The crashed client's pool draws are not multiples of the batched
  // effective batches (40, 80), so some arm of some attempt must reclaim
  // a fetched-chain remainder through the lease.
  EXPECT_GT(reclaimed_across_sweep, 0)
      << "no arm of the fetch-batch sweep reclaimed residual tokens";
}

#if HAECHI_WATCHDOG_ENABLED

// Randomized controller-plan property: whatever alert stream hits the
// controller, every boundary plan it emits must
//   * keep resize deltas sum-neutral (the A10 identity at the source),
//   * state each resize as value == reservation + delta with value >= 0
//     and value <= limit (when limited),
//   * never grow a non-burst client past its spec reservation,
//   * keep eta scaling inside [125, 1000] milli,
// and a twin controller fed the identical sequence must produce the
// identical plans (determinism — the sim's byte-identical-replay
// guarantee reduces to this).
TEST(RuntimePropertyTest, RandomControllerPlansPreserveTheInvariants) {
  using core::control::ActionKind;
  using core::control::ClientClass;
  using core::control::ControllerConfig;
  using core::control::Policy;
  using core::control::QosController;
  using Action = QosController::Action;
  using ClientView = QosController::ClientView;

  const obs::AlertKind kinds[] = {
      obs::AlertKind::kReservationShortfall,
      obs::AlertKind::kCapacityOscillation,
      obs::AlertKind::kFaaStarvation,
      obs::AlertKind::kLeaseChurn,
  };

  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    std::mt19937_64 rng(seed);
    ControllerConfig config;
    config.policy = (seed % 2 != 0u) ? Policy::kAggressive
                                     : Policy::kConservative;
    QosController controller(config);
    QosController twin(config);

    const auto clients =
        static_cast<std::uint32_t>(2 + rng() % 7);  // 2..8 clients
    std::vector<std::int64_t> reservation(clients);
    std::vector<std::int64_t> limit(clients);
    std::vector<std::int64_t> spec_reservation(clients);
    std::vector<bool> burst(clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      spec_reservation[c] = 100 + static_cast<std::int64_t>(rng() % 2000);
      reservation[c] = spec_reservation[c];
      limit[c] = (rng() % 3 == 0)
                     ? 0  // unlimited
                     : spec_reservation[c] +
                           static_cast<std::int64_t>(rng() % 3000);
      burst[c] = rng() % 2 == 0;
      ClientClass cls;
      cls.priority = static_cast<std::uint8_t>(rng() % 4);
      cls.burst = burst[c];
      const std::int64_t demand =
          100 + static_cast<std::int64_t>(rng() % 4000);
      for (QosController* target : {&controller, &twin}) {
        target->SetClientSpec(c, spec_reservation[c], limit[c], demand);
        target->SetClientClass(c, cls);
      }
    }
    const std::int64_t initial_sum =
        std::accumulate(reservation.begin(), reservation.end(),
                        std::int64_t{0});

    for (std::uint32_t period = 1; period <= 24; ++period) {
      const std::uint64_t alert_count = rng() % 4;
      for (std::uint64_t i = 0; i < alert_count; ++i) {
        obs::Alert alert;
        alert.kind = kinds[rng() % std::size(kinds)];
        alert.severity = (rng() % 2 != 0u) ? obs::AlertSeverity::kCritical
                                           : obs::AlertSeverity::kWarning;
        alert.period = period;
        alert.client = static_cast<std::int64_t>(rng() % clients);
        alert.expected = 50 + static_cast<std::int64_t>(rng() % 2000);
        alert.observed =
            static_cast<std::int64_t>(rng() % 64) * alert.expected / 64;
        controller.OnAlert(alert);
        twin.OnAlert(alert);
      }

      std::vector<ClientView> view;
      for (std::uint32_t c = 0; c < clients; ++c) {
        view.push_back({c, reservation[c], limit[c],
                        static_cast<std::int64_t>(rng() % 2000)});
      }
      const auto plan = controller.PlanBoundary(period, view);
      const auto twin_plan = twin.PlanBoundary(period, view);

      ASSERT_EQ(plan.actions.size(), twin_plan.actions.size())
          << "seed " << seed << " period " << period;
      std::int64_t delta_sum = 0;
      for (std::size_t i = 0; i < plan.actions.size(); ++i) {
        const Action& action = plan.actions[i];
        const Action& twin_action = twin_plan.actions[i];
        EXPECT_TRUE(action.kind == twin_action.kind &&
                    action.client == twin_action.client &&
                    action.value == twin_action.value &&
                    action.delta == twin_action.delta)
            << "twin controllers diverged at seed " << seed << " period "
            << period << " action " << i;
        switch (action.kind) {
          case ActionKind::kResize: {
            ASSERT_GE(action.client, 0);
            const auto c = static_cast<std::uint32_t>(action.client);
            ASSERT_LT(c, clients);
            delta_sum += action.delta;
            EXPECT_EQ(action.value, reservation[c] + action.delta);
            EXPECT_GE(action.value, 0);
            if (limit[c] > 0) EXPECT_LE(action.value, limit[c]);
            if (!burst[c]) {
              EXPECT_LE(action.value,
                        std::max(spec_reservation[c], reservation[c]))
                  << "non-burst client " << c << " grew past its spec";
            }
            reservation[c] = action.value;  // the monitor would apply it
            break;
          }
          case ActionKind::kScaleEta:
            EXPECT_GE(action.value, 125);
            EXPECT_LE(action.value, 1000);
            break;
          case ActionKind::kForceConversion:
          case ActionKind::kReadmit:
            break;
        }
      }
      EXPECT_EQ(delta_sum, 0)
          << "seed " << seed << " period " << period
          << ": plan is not sum-neutral";
      EXPECT_EQ(std::accumulate(reservation.begin(), reservation.end(),
                                std::int64_t{0}),
                initial_sum)
          << "seed " << seed << " period " << period
          << ": total reservation drifted";
    }
  }
}

// The controller rides the threaded runtime's real period boundaries: a
// conservative policy armed over the crash/lease scenario must leave the
// full A1-A10 audit green — in particular every kControlAction the
// monitor applied under real-time scheduling still sums to zero per
// period (A10), and forced actions never break token conservation.
TEST(RuntimePropertyTest, ControllerArmedThreadedRunKeepsTheAuditGreen) {
  harness::ExperimentConfig config = PropertyConfig(4, 29);
  config.watchdog.enabled = true;
  config.control.policy = core::control::Policy::kConservative;

  harness::ThreadedExperiment experiment(config);
  const harness::ThreadedExperimentResult result = experiment.Run();
  ASSERT_NE(experiment.controller(), nullptr);
  EXPECT_TRUE(experiment.controller()->enabled());

  for (const auto& ledger : result.ledger) {
    if (ledger.period >= result.monitor_stats.periods) continue;
    EXPECT_EQ(ledger.initial_pool + ledger.minted - ledger.granted,
              ledger.end_pool)
        << "ledger period " << ledger.period;
  }

  ASSERT_NE(experiment.recorder(), nullptr);
  const obs::AuditReport report =
      obs::AuditTrace(experiment.recorder()->Merged());
  for (const auto& v : report.violations) {
    ADD_FAILURE() << v.check << ": " << v.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.guarantee_checks, 0u);
}

#endif  // HAECHI_WATCHDOG_ENABLED

}  // namespace
}  // namespace haechi
