// Tests for the QoS wire formats: report packing, field saturation, and
// control-message layout stability (the engine parses raw bytes).
#include <gtest/gtest.h>

#include <cstring>

#include "core/wire.hpp"

namespace haechi::core {
namespace {

TEST(Wire, ReportRoundTrip) {
  const std::uint64_t packed = PackReport(7, 123456, 654321);
  EXPECT_EQ(ReportPeriod(packed), 7u);
  EXPECT_EQ(ReportResidual(packed), 123456u);
  EXPECT_EQ(ReportCompleted(packed), 654321u);
}

TEST(Wire, ReportFieldsAreIndependent) {
  const std::uint64_t a = PackReport(1, kReportFieldMask, 0);
  EXPECT_EQ(ReportResidual(a), kReportFieldMask);
  EXPECT_EQ(ReportCompleted(a), 0u);
  const std::uint64_t b = PackReport(1, 0, kReportFieldMask);
  EXPECT_EQ(ReportResidual(b), 0u);
  EXPECT_EQ(ReportCompleted(b), kReportFieldMask);
}

TEST(Wire, ReportSaturatesOversizedCounts) {
  const std::uint64_t packed =
      PackReport(1, kReportFieldMask + 5, kReportFieldMask + 99);
  EXPECT_EQ(ReportResidual(packed), kReportFieldMask);
  EXPECT_EQ(ReportCompleted(packed), kReportFieldMask);
}

TEST(Wire, ReportFieldHoldsPaperScaleCounts) {
  // The paper's data node peaks at ~1.6M I/Os per period; 22 bits hold
  // ~4.19M, and the fields saturate (clamp) rather than wrap beyond that.
  EXPECT_GT(kReportFieldMask, 1'600'000u * 2);
  const std::uint64_t packed = PackReport(1, kReportFieldMask + 7, 1);
  EXPECT_EQ(ReportResidual(packed), kReportFieldMask);
}

TEST(Wire, PeriodTagWrapsAt12Bits) {
  const std::uint64_t packed = PackReport(0x1fff, 1, 1);
  EXPECT_EQ(ReportPeriod(packed), 0xfffu);
}

TEST(Wire, SeqMakesIdenticalPayloadsDistinct) {
  // The report lease detects liveness as "slot bytes changed"; the seq
  // field must distinguish consecutive idle reports.
  const std::uint64_t a = PackReport(7, 100, 50, 1);
  const std::uint64_t b = PackReport(7, 100, 50, 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(ReportSeq(a), 1u);
  EXPECT_EQ(ReportSeq(b), 2u);
  EXPECT_EQ(ReportPeriod(a), ReportPeriod(b));
  EXPECT_EQ(ReportResidual(a), ReportResidual(b));
  EXPECT_EQ(ReportCompleted(a), ReportCompleted(b));
}

TEST(Wire, ZeroReportIsValid) {
  const std::uint64_t packed = PackReport(0, 0, 0);
  EXPECT_EQ(packed, 0u);
  EXPECT_EQ(ReportPeriod(packed), 0u);
}

TEST(Wire, ControlMessageTypesAreFirstField) {
  // The engine dispatches on the leading 32-bit type; verify layout.
  PeriodStartMsg start;
  start.period = 3;
  start.reservation_tokens = 42;
  CtrlType type;
  std::memcpy(&type, &start, sizeof(type));
  EXPECT_EQ(type, CtrlType::kPeriodStart);

  ReportRequestMsg request;
  std::memcpy(&type, &request, sizeof(type));
  EXPECT_EQ(type, CtrlType::kReportRequest);

  OverReserveHintMsg hint;
  std::memcpy(&type, &hint, sizeof(type));
  EXPECT_EQ(type, CtrlType::kOverReserveHint);
}

TEST(Wire, MessagesFitControlBuffers) {
  // Engine control receive buffers are 64 bytes.
  static_assert(sizeof(PeriodStartMsg) <= 64);
  static_assert(sizeof(ReportRequestMsg) <= 64);
  static_assert(sizeof(OverReserveHintMsg) <= 64);
  SUCCEED();
}

TEST(Wire, PeriodStartCarriesTokensAndLimit) {
  PeriodStartMsg msg;
  msg.period = 9;
  msg.reservation_tokens = 123456789;
  msg.limit = 987654321;
  PeriodStartMsg decoded;
  std::memcpy(&decoded, &msg, sizeof(msg));
  EXPECT_EQ(decoded.period, 9u);
  EXPECT_EQ(decoded.reservation_tokens, 123456789);
  EXPECT_EQ(decoded.limit, 987654321);
}

}  // namespace
}  // namespace haechi::core
