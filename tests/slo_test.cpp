// Online SLO watchdog tests: alert sinks, synthetic-stream rule checks
// (W2/W4/W5), and the end-to-end contracts from the acceptance criteria —
// a clean run raises nothing, same-seed runs emit byte-identical alert
// JSONL, and the online verdicts agree with the offline auditor on the
// same trace, both for healthy runs and for tampered ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/alerts.hpp"
#include "obs/audit.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using obs::Alert;
using obs::AlertKind;
using obs::AlertSeverity;
using obs::EventType;
using obs::TraceEvent;

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

/// Scaled-down fig09: 10 clients, 90% reserved, everyone hungry — the
/// healthy scenario that must never alarm.
ExperimentConfig Fig09Config() {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 6;
  config.records = 256;
  config.seed = 42;
  const std::int64_t cap = Capacity(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  for (const auto r : workload::UniformShare(reserved, 10)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + pool;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  return config;
}

/// Scaled-down fig10: C1/C2's demand stops at half their reservation, so
/// token conversion recycles the shortfall (audit_test's scenario).
/// maybe_unused: referenced only by the watchdog-gated tests below.
[[maybe_unused]] ExperimentConfig Fig10Config() {
  ExperimentConfig config = Fig09Config();
  const std::int64_t cap = Capacity(config);
  const std::int64_t pool = cap - cap * 9 / 10;
  for (std::size_t i = 0; i < 2; ++i) {
    config.clients[i].demand = (config.clients[i].demand - pool) / 2;
  }
  return config;
}

/// The chaos crash-reclamation scenario: saturated 4-client cluster,
/// client 0 crashes mid-run, the report lease reclaims its tokens.
[[maybe_unused]] ExperimentConfig CrashChaosConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 6;
  config.records = 256;
  config.qos.token_batch = 100;
  config.qos.report_lease_intervals = 8;
  config.seed = seed;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  ExperimentConfig::ClientFault fault;
  fault.client = 0;
  fault.crash_at = Seconds(2) + Millis(500);
  config.client_faults.push_back(fault);
  return config;
}

/// CrashChaosConfig plus a restart and a lossy control plane (dropped
/// FAAs/reports, duplicated reports, jitter) — the chaos_test fault mix.
[[maybe_unused]] ExperimentConfig FaultyChaosConfig(std::uint64_t seed) {
  ExperimentConfig config = CrashChaosConfig(seed);
  config.client_faults.back().restart_at = Seconds(4) + Millis(100);
  config.faults.seed = seed * 7919 + 1;
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.05;
  config.faults.Add(drop_faa);
  rdma::FaultRule drop_report;
  drop_report.action = rdma::FaultAction::kDrop;
  drop_report.opcode = rdma::Opcode::kWrite;
  drop_report.probability = 0.05;
  config.faults.Add(drop_report);
  rdma::FaultRule dup_report;
  dup_report.action = rdma::FaultAction::kDuplicate;
  dup_report.opcode = rdma::Opcode::kWrite;
  dup_report.probability = 0.05;
  config.faults.Add(dup_report);
  rdma::FaultRule jitter;
  jitter.action = rdma::FaultAction::kDelay;
  jitter.probability = 0.1;
  jitter.delay = 3'000;
  config.faults.Add(jitter);
  return config;
}

std::size_t CountKind(const std::vector<Alert>& alerts, AlertKind kind) {
  return static_cast<std::size_t>(
      std::count_if(alerts.begin(), alerts.end(),
                    [&](const Alert& a) { return a.kind == kind; }));
}

// ---------------------------------------------------------------------------
// Alert records and sinks (no tracing needed — plain data structures).

TEST(Alerts, JsonlHasStableFieldOrderAndEscapesCause) {
  Alert alert;
  alert.kind = AlertKind::kReservationShortfall;
  alert.severity = AlertSeverity::kCritical;
  alert.time = 5'000'000;
  alert.period = 7;
  alert.client = 3;
  alert.expected = 950;
  alert.observed = 412;
  alert.cause = "client \"3\" under-served\nsecond line";
  EXPECT_EQ(obs::ToJsonl(alert),
            "{\"time_ns\":5000000,\"period\":7,"
            "\"kind\":\"reservation_shortfall\",\"severity\":\"critical\","
            "\"client\":3,\"expected\":950,\"observed\":412,"
            "\"cause\":\"client \\\"3\\\" under-served\\nsecond line\"}");
}

TEST(Alerts, RingSinkKeepsTheNewestAlertsAndCountsDrops) {
  obs::RingAlertSink ring(2);
  for (std::uint32_t p = 0; p < 5; ++p) {
    Alert alert;
    alert.period = p;
    ring.OnAlert(alert);
  }
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 3u);
  ASSERT_EQ(ring.alerts().size(), 2u);
  EXPECT_EQ(ring.alerts().front().period, 3u);
  EXPECT_EQ(ring.alerts().back().period, 4u);
}

TEST(Alerts, JsonlSinkBuffersLinesAndFlushesToDisk) {
  obs::JsonlAlertSink buffered("");  // empty path: buffer only
  Alert alert;
  alert.period = 1;
  buffered.OnAlert(alert);
  buffered.OnAlert(alert);
  EXPECT_EQ(buffered.count(), 2u);
  EXPECT_TRUE(buffered.Flush().ok());

  const std::string path = ::testing::TempDir() + "/haechi_alerts_test.jsonl";
  obs::JsonlAlertSink file_sink(path);
  file_sink.OnAlert(alert);
  ASSERT_TRUE(file_sink.Flush().ok());
  const auto written = obs::ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), file_sink.buffer());
  EXPECT_EQ(written.value(), obs::ToJsonl(alert) + "\n");

  obs::JsonlAlertSink bad_sink("/nonexistent-dir/alerts.jsonl");
  bad_sink.OnAlert(alert);
  EXPECT_FALSE(bad_sink.Flush().ok());
}

TEST(Alerts, StatusLineIsDeterministic) {
  obs::PeriodStatus status;
  status.period = 12;
  status.capacity = 5000;
  status.end_pool = 480;
  status.completed = 4521;
  status.attainment = {{0, 100}, {1, 98}};
  status.period_alerts = 1;
  status.total_alerts = 3;
  EXPECT_EQ(obs::FormatStatusLine(status),
            "period   12 | pool 480/5000 | done 4521 | att C0:100% C1:98% "
            "| alerts +1/3");

  obs::PeriodStatus idle;
  idle.period = 1;
  EXPECT_EQ(obs::FormatStatusLine(idle),
            "period    1 | pool 0/0 | done 0 | att - | alerts +0/0");
}

// ---------------------------------------------------------------------------
// Synthetic event streams pin individual rules without a full experiment.

TraceEvent E(SimTime time, obs::ActorKind kind, std::uint32_t actor,
             EventType type, std::uint32_t period, std::int64_t a = 0,
             std::int64_t b = 0, std::int64_t c = 0) {
  TraceEvent event;
  event.time = time;
  event.type = type;
  event.actor_kind = kind;
  event.actor = actor;
  event.period = period;
  event.a = a;
  event.b = b;
  event.c = c;
  return event;
}

// Assigns the dense per-actor sequence numbers the recorder always emits;
// without them the watchdog's truncation check reads every repeat of an
// actor as a ring-wrap seq gap.
std::vector<TraceEvent> DenseSeqs(std::vector<TraceEvent> events) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> next;
  for (TraceEvent& event : events) {
    event.seq =
        next[{static_cast<std::uint32_t>(event.actor_kind), event.actor}]++;
  }
  return events;
}

TEST(SloWatchdogRules, LimitOvershootIsCriticalWhileTheFloorStaysQuiet) {
  const auto kMon = obs::ActorKind::kMonitor;
  const auto kHar = obs::ActorKind::kHarness;
  const std::vector<TraceEvent> events = {
      E(0, kHar, 0, EventType::kRunConfig, 0, 1000, 50, 1),
      // Harness traces must declare their measurement window before any
      // period counts as measured (real harnesses always emit this).
      E(0, kHar, 0, EventType::kMeasureStart, 0),
      // client 0: reservation 400, limit 300, demand 500
      E(0, kHar, 0, EventType::kClientSpec, 0, 400, 300, 500),
      E(0, kMon, 0, EventType::kMonitorPeriodStart, 1, 1000, 400, 600),
      E(500, kMon, 0, EventType::kReportSignal, 1),
      // completed 450: above the limit, but above the W1 floor (380) too.
      E(900, kMon, 0, EventType::kClientPeriodReport, 1, 0, 450, 0),
      E(1000, kMon, 0, EventType::kMonitorPeriodEnd, 1, 600, 450, 0),
  };
  const auto alerts = obs::ReplayTrace(DenseSeqs(events));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::kLimitOvershoot);
  EXPECT_EQ(alerts[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(alerts[0].client, 0);
  EXPECT_EQ(alerts[0].expected, 300);
  EXPECT_EQ(alerts[0].observed, 450);
}

TEST(SloWatchdogRules, ConversionStallUnderIdleReservationsWarns) {
  const auto kMon = obs::ActorKind::kMonitor;
  const auto kEng = obs::ActorKind::kEngine;
  const auto kHar = obs::ActorKind::kHarness;
  const std::vector<TraceEvent> events = {
      E(0, kHar, 0, EventType::kRunConfig, 0, 1000, 50, 0),
      E(0, kMon, 0, EventType::kMonitorPeriodStart, 1, 1000, 900, 100),
      // Engines drain the pool and then starve...
      E(200, kMon, 0, EventType::kPoolSample, 1, 0),
      E(300, kEng, 1, EventType::kPoolEmpty, 1),
      // ...while a full FAA batch of reservation tokens sits idle...
      E(400, kEng, 2, EventType::kTokenDecay, 1, 60),
      // ...and every conversion still writes xi_global = 0.
      E(500, kMon, 0, EventType::kReportSignal, 1),
      E(600, kMon, 0, EventType::kTokenConvert, 1, 0, 0),
      E(1000, kMon, 0, EventType::kMonitorPeriodEnd, 1, 0, 0, 0),
  };
  const auto alerts = obs::ReplayTrace(DenseSeqs(events));
  ASSERT_EQ(CountKind(alerts, AlertKind::kConversionStall), 1u);
  const auto stall =
      std::find_if(alerts.begin(), alerts.end(), [](const Alert& a) {
        return a.kind == AlertKind::kConversionStall;
      });
  EXPECT_EQ(stall->severity, AlertSeverity::kWarning);
  EXPECT_EQ(stall->expected, 60);  // idle tokens surrendered to decay
}

TEST(SloWatchdogRules, CapacityEstimateOscillationTripsAfterFourFlips) {
  const auto kMon = obs::ActorKind::kMonitor;
  std::vector<TraceEvent> events;
  const std::int64_t estimates[] = {1000, 2000, 1000, 2000, 1000};
  for (std::size_t i = 0; i < std::size(estimates); ++i) {
    events.push_back(E(static_cast<SimTime>(1000 * (i + 1)), kMon, 0,
                       EventType::kCapacityEstimate,
                       static_cast<std::uint32_t>(i + 1), 0, estimates[i]));
  }
  const auto alerts = obs::ReplayTrace(DenseSeqs(events));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::kCapacityOscillation);
  EXPECT_EQ(alerts[0].severity, AlertSeverity::kWarning);

  // A steadily-growing estimate (Algorithm 1's Grow phase) never alarms.
  std::vector<TraceEvent> steady;
  for (std::size_t i = 0; i < 8; ++i) {
    steady.push_back(E(static_cast<SimTime>(1000 * (i + 1)), kMon, 0,
                       EventType::kCapacityEstimate,
                       static_cast<std::uint32_t>(i + 1), 0,
                       static_cast<std::int64_t>(1000 + 100 * i)));
  }
  EXPECT_TRUE(obs::ReplayTrace(DenseSeqs(steady)).empty());
}

// ---------------------------------------------------------------------------
// End-to-end contracts (need the live tap, i.e. the watchdog compiled in).

#if HAECHI_WATCHDOG_ENABLED

/// Runs with the watchdog armed, returning the experiment for inspection.
std::unique_ptr<Experiment> RunWatched(ExperimentConfig config,
                                       double guarantee_fraction = 0.95) {
  config.trace.enabled = true;
  config.watchdog.enabled = true;
  config.watchdog.guarantee_fraction = guarantee_fraction;
  auto experiment = std::make_unique<Experiment>(std::move(config));
  experiment->Run();
  return experiment;
}

TEST(SloWatchdogEndToEnd, CleanFig09RunRaisesNoAlerts) {
  const auto experiment = RunWatched(Fig09Config());
  ASSERT_NE(experiment->watchdog(), nullptr);
  EXPECT_GE(experiment->watchdog()->periods_evaluated(), 6u);
  EXPECT_GT(experiment->watchdog()->guarantee_checks(), 0);
  EXPECT_TRUE(experiment->watchdog()->alerts().empty())
      << experiment->alerts_jsonl();
  EXPECT_TRUE(experiment->alerts_jsonl().empty());
}

TEST(SloWatchdogEndToEnd, SameSeedRunsProduceByteIdenticalAlertJsonl) {
  const auto first = RunWatched(FaultyChaosConfig(5), 0.9);
  const auto second = RunWatched(FaultyChaosConfig(5), 0.9);
  ASSERT_NE(first->watchdog(), nullptr);
  EXPECT_EQ(first->alerts_jsonl(), second->alerts_jsonl());
  EXPECT_EQ(first->watchdog()->alerts().size(),
            second->watchdog()->alerts().size());
}

TEST(SloWatchdogEndToEnd, LiveAlertsMatchReplayOfTheExportedTrace) {
  const auto experiment = RunWatched(FaultyChaosConfig(7), 0.9);
  ASSERT_NE(experiment->watchdog(), nullptr);
  obs::WatchdogOptions options;
  options.guarantee_fraction = 0.9;
  const auto replayed =
      obs::ReplayTrace(experiment->recorder()->Merged(), options);
  const auto& live = experiment->watchdog()->alerts();
  ASSERT_EQ(live.size(), replayed.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(obs::ToJsonl(live[i]), obs::ToJsonl(replayed[i]));
  }
}

TEST(SloWatchdogEndToEnd, AgreesWithAuditOnTheHealthyFig10Underload) {
  const auto experiment = RunWatched(Fig10Config());
  ASSERT_NE(experiment->watchdog(), nullptr);
  const obs::AuditReport report =
      obs::AuditTrace(experiment->recorder()->Merged());
  // Offline says every identity holds; online must agree — and the shared
  // A9/W1 geometry must have evaluated the same (client, period) pairs.
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(experiment->watchdog()->CountAtLeast(AlertSeverity::kCritical),
            0u)
      << experiment->alerts_jsonl();
  EXPECT_EQ(experiment->watchdog()->guarantee_checks(),
            report.guarantee_checks);
}

TEST(SloWatchdogEndToEnd, AgreesWithAuditUnderCrashChaosWithoutFalseAlarms) {
  const auto experiment = RunWatched(CrashChaosConfig(5), 0.9);
  ASSERT_NE(experiment->watchdog(), nullptr);
  obs::AuditOptions options;
  options.guarantee_fraction = 0.9;  // survivors' bar under a mid-run crash
  const obs::AuditReport report =
      obs::AuditTrace(experiment->recorder()->Merged(), options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // The crash is scripted: the watchdog must apply the auditor's crash
  // exclusions rather than alarming on the injected fault.
  EXPECT_EQ(experiment->watchdog()->CountAtLeast(AlertSeverity::kCritical),
            0u)
      << experiment->alerts_jsonl();
}

TEST(SloWatchdogEndToEnd, AgreesWithAuditUnderControlPlaneChaos) {
  const auto experiment = RunWatched(FaultyChaosConfig(1), 0.85);
  ASSERT_NE(experiment->watchdog(), nullptr);
  obs::AuditOptions options;
  options.guarantee_fraction = 0.85;  // lossy control plane
  const obs::AuditReport report =
      obs::AuditTrace(experiment->recorder()->Merged(), options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(experiment->watchdog()->CountAtLeast(AlertSeverity::kCritical),
            0u)
      << experiment->alerts_jsonl();
}

TEST(SloWatchdogEndToEnd, StatusCallbackFiresEveryNthPeriod) {
  ExperimentConfig config = Fig09Config();
  config.watchdog.status_interval = 2;
  std::vector<obs::PeriodStatus> seen;
  config.watchdog.status_fn = [&seen](const obs::PeriodStatus& status) {
    seen.push_back(status);
  };
  Experiment experiment(std::move(config));
  experiment.Run();
  ASSERT_NE(experiment.watchdog(), nullptr);
  EXPECT_EQ(seen.size(), experiment.watchdog()->periods_evaluated() / 2);
  ASSERT_FALSE(seen.empty());
  EXPECT_GT(seen.back().capacity, 0);
  EXPECT_EQ(seen.back().attainment.size(), 10u);
  EXPECT_EQ(seen.back().total_alerts, 0u);
}

TEST(SloWatchdogEndToEnd, UnrequestedWatchdogStaysNull) {
  ExperimentConfig config = Fig09Config();
  Experiment experiment(std::move(config));
  experiment.Run();
  EXPECT_EQ(experiment.watchdog(), nullptr);
  EXPECT_TRUE(experiment.alerts_jsonl().empty());
}

// ---------------------------------------------------------------------------
// Tampered traces: the online replay and the offline audit must convict
// the same corruption.

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

std::string WithField(const std::string& line, std::size_t index,
                      const std::string& value) {
  auto fields = Fields(line);
  fields.at(index) = value;
  std::string out = fields[0];
  for (std::size_t i = 1; i < fields.size(); ++i) out += "," + fields[i];
  return out;
}

class SloTamper : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = Fig10Config();
    config.measure_periods = 4;
    config.trace.enabled = true;
    Experiment experiment(std::move(config));
    experiment.Run();
    csv_ =
        new std::string(obs::ToCsvString(experiment.recorder()->Merged()));
  }
  static void TearDownTestSuite() {
    delete csv_;
    csv_ = nullptr;
  }

  /// (audit report, watchdog replay alerts) over the same tampered text.
  static std::pair<obs::AuditReport, std::vector<Alert>> Judge(
      const std::string& text) {
    auto parsed = obs::ParseCsvTrace(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return {obs::AuditTrace(parsed.value()),
            obs::ReplayTrace(parsed.value())};
  }

  static std::string* csv_;
};

std::string* SloTamper::csv_ = nullptr;

// CSV layout: time_ns,kind,actor,seq,type,period,a,b,c

TEST_F(SloTamper, UntamperedTraceConvictsNothing) {
  const auto [report, alerts] = Judge(*csv_);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(alerts.empty());
}

TEST_F(SloTamper, ForgedInitialPoolConvictedByBothWitnesses) {
  auto lines = SplitLines(*csv_);
  std::size_t victim = lines.size();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].find(",period_start,") != std::string::npos) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 8, "999999999");  // c=initial
  const auto [report, alerts] = Judge(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(obs::FirstFailedCheck(report), 2) << report.Summary();
  EXPECT_GE(CountKind(alerts, AlertKind::kPoolConservation), 1u);
}

TEST_F(SloTamper, InflatedPoolSampleConvictedByBothWitnesses) {
  auto lines = SplitLines(*csv_);
  std::size_t victim = lines.size();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].find(",pool_sample,") != std::string::npos) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 6, "888888888");  // a=raw pool
  const auto [report, alerts] = Judge(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(obs::FirstFailedCheck(report), 3) << report.Summary();
  EXPECT_GE(CountKind(alerts, AlertKind::kPoolConservation), 1u);
}

TEST_F(SloTamper, ErasedClientReportConvictedAsShortfallByBothWitnesses) {
  // Pick a hungry client's calibration report in a *measured* period (the
  // A9/W1 geometry: start >= measure_start and start + T <= measure_end),
  // then zero its completed count — forging a reservation miss.
  auto parsed = obs::ParseCsvTrace(*csv_);
  ASSERT_TRUE(parsed.ok());
  SimTime measure_start = -1;
  SimTime measure_end = -1;
  SimDuration period_len = 0;
  std::map<std::uint32_t, SimTime> period_starts;
  for (const TraceEvent& e : parsed.value()) {
    if (e.type == EventType::kMeasureStart) measure_start = e.time;
    if (e.type == EventType::kMeasureEnd) measure_end = e.time;
    if (e.type == EventType::kRunConfig) period_len = e.a;
    if (e.type == EventType::kMonitorPeriodStart) {
      period_starts[e.period] = e.time;
    }
  }
  ASSERT_GT(period_len, 0);
  ASSERT_GE(measure_start, 0);
  ASSERT_GT(measure_end, measure_start);
  const std::uint32_t hungry_client = 5;  // demand = reservation + pool
  std::uint32_t victim_period = 0;
  for (const TraceEvent& e : parsed.value()) {
    if (e.type != EventType::kClientPeriodReport) continue;
    if (e.a != hungry_client || e.b <= 0) continue;
    const auto start = period_starts.find(e.period);
    if (start == period_starts.end()) continue;
    if (start->second >= measure_start &&
        start->second + period_len <= measure_end) {
      victim_period = e.period;
      break;
    }
  }
  ASSERT_GT(victim_period, 0u);

  auto lines = SplitLines(*csv_);
  std::size_t victim = lines.size();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = Fields(lines[i]);
    if (fields.size() == 9 && fields[4] == "client_period_report" &&
        fields[5] == std::to_string(victim_period) &&
        fields[6] == std::to_string(hungry_client)) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 7, "0");  // b = completed

  const auto [report, alerts] = Judge(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(obs::FirstFailedCheck(report), 9) << report.Summary();
  ASSERT_EQ(CountKind(alerts, AlertKind::kReservationShortfall), 1u);
  const auto shortfall =
      std::find_if(alerts.begin(), alerts.end(), [](const Alert& a) {
        return a.kind == AlertKind::kReservationShortfall;
      });
  EXPECT_EQ(shortfall->client, hungry_client);
  EXPECT_EQ(shortfall->period, victim_period);
  EXPECT_EQ(shortfall->observed, 0);
  EXPECT_EQ(shortfall->severity, AlertSeverity::kCritical);
}

#else  // !HAECHI_WATCHDOG_ENABLED

TEST(SloWatchdogEndToEnd, CompiledOutBuildNeverArmsTheWatchdog) {
  ExperimentConfig config = Fig09Config();
  config.watchdog.enabled = true;
  config.watchdog.status_interval = 2;
  Experiment experiment(std::move(config));
  experiment.Run();
  EXPECT_EQ(experiment.watchdog(), nullptr);
  EXPECT_TRUE(experiment.alerts_jsonl().empty());
}

#endif  // HAECHI_WATCHDOG_ENABLED

}  // namespace
}  // namespace haechi
