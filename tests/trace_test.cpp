// Flight recorder, metrics registry and exporter tests: ring semantics
// (dense seqs, wrap-with-drop-count), deterministic merge order, macro
// argument elision, CSV round-trip and corruption rejection, Perfetto
// rendering sanity, metrics snapshots — and the headline determinism
// property: two experiments with identical seeds and fault plans export
// byte-identical traces.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "obs/alerts.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using obs::ActorKind;
using obs::EventType;
using obs::Recorder;
using obs::TraceEvent;

Recorder::Options SmallRing(std::size_t capacity) {
  Recorder::Options options;
  options.ring_capacity = capacity;
  return options;
}

// ---------------------------------------------------------------------------
// Recorder unit tests.

TEST(Recorder, AssignsDenseSequencesAndStampsSimTime) {
  sim::Simulator sim;
  Recorder recorder(sim);
  sim.ScheduleAt(10, [&] {
    recorder.Emit(ActorKind::kEngine, 3, EventType::kTokenFetch, 1, 100);
  });
  sim.ScheduleAt(25, [&] {
    recorder.Emit(ActorKind::kEngine, 3, EventType::kTokenFetchDone, 1, 900,
                  100);
  });
  sim.Run();

  const auto events = recorder.ActorEvents(ActorKind::kEngine, 3);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, EventType::kTokenFetch);
  EXPECT_EQ(events[0].actor, 3u);
  EXPECT_EQ(events[0].a, 100);
  EXPECT_EQ(events[1].time, 25);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].b, 100);
  EXPECT_EQ(recorder.TotalEmitted(), 2u);
  EXPECT_EQ(recorder.TotalDropped(), 0u);
}

TEST(Recorder, RingWrapKeepsNewestEventsAndCountsDrops) {
  sim::Simulator sim;
  Recorder recorder(sim, SmallRing(4));
  for (std::int64_t i = 0; i < 10; ++i) {
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1, i);
  }
  const auto events = recorder.ActorEvents(ActorKind::kMonitor, 0);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // oldest first, newest retained
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(6 + i));
  }
  EXPECT_EQ(recorder.TotalEmitted(), 10u);
  EXPECT_EQ(recorder.TotalDropped(), 6u);
}

TEST(Recorder, DropNotifyFiresExactlyOnceOnTheFirstWrap) {
  // Regression for silent ring truncation: the first overwriting append
  // must invoke the notify callback, and later drops (same ring or a
  // sibling actor's) must not re-fire it.
  sim::Simulator sim;
  Recorder recorder(sim, SmallRing(4));
  int notified = 0;
  recorder.SetDropNotify([&] { ++notified; });
  for (std::int64_t i = 0; i < 4; ++i) {
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1, i);
  }
  EXPECT_EQ(notified, 0);  // ring exactly full, nothing dropped yet
  recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1, 4);
  EXPECT_EQ(notified, 1);
  for (std::int64_t i = 0; i < 6; ++i) {
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1, 5 + i);
    recorder.Emit(ActorKind::kEngine, 2, EventType::kTokenFetch, 1, i);
  }
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(recorder.TotalDropped(), 7u + 2u);  // monitor 7, engine 2
}

TEST(Recorder, MergedOrdersByTimeThenKindThenActorThenSeq) {
  sim::Simulator sim;
  Recorder recorder(sim);
  sim.ScheduleAt(5, [&] {
    // Same timestamp, different kinds/actors — emitted out of order.
    recorder.Emit(ActorKind::kFabric, 2, EventType::kOpDropped, 0);
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1);
    recorder.Emit(ActorKind::kEngine, 1, EventType::kTokenFetch, 1);
    recorder.Emit(ActorKind::kEngine, 0, EventType::kTokenFetch, 1);
  });
  sim.ScheduleAt(2, [&] {
    recorder.Emit(ActorKind::kHarness, 0, EventType::kMeasureStart, 0);
  });
  sim.Run();

  const auto merged = recorder.Merged();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].type, EventType::kMeasureStart);  // earliest time
  EXPECT_EQ(merged[1].actor_kind, ActorKind::kMonitor);
  EXPECT_EQ(merged[2].actor_kind, ActorKind::kEngine);
  EXPECT_EQ(merged[2].actor, 0u);  // engine 0 before engine 1
  EXPECT_EQ(merged[3].actor, 1u);
  EXPECT_EQ(merged[4].actor_kind, ActorKind::kFabric);
}

TEST(Recorder, MacroArgumentsAreNotEvaluatedWithoutAnActiveRecorder) {
  int evaluated = 0;
  // No recorder installed: the macro's payload expressions must not run.
  HAECHI_TRACE_EVENT(ActorKind::kEngine, 0, EventType::kTokenFetch, 0,
                     ++evaluated);
  EXPECT_EQ(evaluated, 0);

#if HAECHI_TRACE_ENABLED
  sim::Simulator sim;
  Recorder recorder(sim);
  obs::ScopedRecorder scope(&recorder);
  HAECHI_TRACE_EVENT(ActorKind::kEngine, 0, EventType::kTokenFetch, 0,
                     ++evaluated);
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(recorder.TotalEmitted(), 1u);
  // Detail events stay off unless the recorder opted in.
  HAECHI_TRACE_DETAIL(ActorKind::kKv, 0, EventType::kKvIssue, 0, ++evaluated);
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(recorder.TotalEmitted(), 1u);
#endif
}

TEST(Recorder, ScopedRecorderRestoresThePreviousRecorder) {
  EXPECT_EQ(obs::ActiveRecorder(), nullptr);
  sim::Simulator sim;
  Recorder outer(sim);
  {
    obs::ScopedRecorder outer_scope(&outer);
    EXPECT_EQ(obs::ActiveRecorder(), &outer);
    Recorder inner(sim);
    {
      obs::ScopedRecorder inner_scope(&inner);
      EXPECT_EQ(obs::ActiveRecorder(), &inner);
    }
    EXPECT_EQ(obs::ActiveRecorder(), &outer);
  }
  EXPECT_EQ(obs::ActiveRecorder(), nullptr);
}

TEST(Recorder, EventNamesRoundTripThroughTheWireTable) {
  for (const EventType type :
       {EventType::kMonitorPeriodStart, EventType::kTokenConvert,
        EventType::kCapacityEstimate, EventType::kLeaseExpire,
        EventType::kTokenFetchDone, EventType::kReportWrite,
        EventType::kOpDuplicated, EventType::kKvComplete,
        EventType::kClientRestart}) {
    EventType parsed{};
    ASSERT_TRUE(obs::EventTypeFromName(obs::ToString(type), parsed))
        << obs::ToString(type);
    EXPECT_EQ(parsed, type);
  }
  EventType ignored{};
  EXPECT_FALSE(obs::EventTypeFromName("not_an_event", ignored));
  obs::ActorKind kind{};
  ASSERT_TRUE(obs::ActorKindFromName("engine", kind));
  EXPECT_EQ(kind, ActorKind::kEngine);
  EXPECT_FALSE(obs::ActorKindFromName("gpu", kind));
}

// ---------------------------------------------------------------------------
// Exporters.

std::vector<TraceEvent> SampleEvents() {
  sim::Simulator sim;
  Recorder recorder(sim);
  sim.ScheduleAt(1'000'000, [&] {
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kMonitorPeriodStart, 1,
                  5000, 4500, 500);
    recorder.Emit(ActorKind::kEngine, 0, EventType::kEnginePeriodStart, 1, 450,
                  0);
  });
  sim.ScheduleAt(1'500'000, [&] {
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kPoolSample, 1, 420);
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kTokenConvert, 1, 420,
                  900, 4000);
    recorder.Emit(ActorKind::kMonitor, 0, EventType::kCapacityEstimate, 1,
                  4800, 5100, 1);
    recorder.Emit(ActorKind::kEngine, 0, EventType::kTokenFetchDone, 1, -17,
                  100);
  });
  sim.Run();
  return recorder.Merged();
}

TEST(TraceExport, CsvRoundTripsEveryField) {
  const auto events = SampleEvents();
  const std::string csv = obs::ToCsvString(events);
  const auto parsed = obs::ParseCsvTrace(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].time, events[i].time);
    EXPECT_EQ(parsed.value()[i].seq, events[i].seq);
    EXPECT_EQ(parsed.value()[i].type, events[i].type);
    EXPECT_EQ(parsed.value()[i].actor_kind, events[i].actor_kind);
    EXPECT_EQ(parsed.value()[i].actor, events[i].actor);
    EXPECT_EQ(parsed.value()[i].period, events[i].period);
    EXPECT_EQ(parsed.value()[i].a, events[i].a);
    EXPECT_EQ(parsed.value()[i].b, events[i].b);
    EXPECT_EQ(parsed.value()[i].c, events[i].c);
  }
}

TEST(TraceExport, CsvParserRejectsCorruption) {
  const std::string csv = obs::ToCsvString(SampleEvents());

  EXPECT_FALSE(obs::ParseCsvTrace("nonsense header\n1,2,3\n").ok());

  // Wrong field count.
  std::string missing_field = csv;
  missing_field += "12345,monitor,0,99,pool_sample,1,7\n";
  EXPECT_FALSE(obs::ParseCsvTrace(missing_field).ok());

  // Unknown event name.
  std::string bad_name = csv;
  const auto pos = bad_name.find("pool_sample");
  ASSERT_NE(pos, std::string::npos);
  bad_name.replace(pos, 11, "pool_oracle");
  EXPECT_FALSE(obs::ParseCsvTrace(bad_name).ok());

  // Non-numeric payload.
  std::string bad_number = csv;
  bad_number += "12345,monitor,0,99,pool_sample,1,x,0,0\n";
  EXPECT_FALSE(obs::ParseCsvTrace(bad_number).ok());
}

TEST(TraceExport, PerfettoRenderingHasCounterTracksAndInstants) {
  const std::string json = obs::ToPerfettoString(SampleEvents());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // The pool sample becomes a counter track, not an instant.
  EXPECT_NE(json.find("global_pool"), std::string::npos);
  EXPECT_NE(json.find("capacity_estimate"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(json.find("\"pool_sample\""), std::string::npos);
}

// Cluster traces carry coordinator (kCluster) and harness C-records; both
// exporters must round-trip them like any other event (satellite of the
// cluster metrics rollup — the offline tooling reads these streams).
std::vector<TraceEvent> SampleClusterEvents() {
  sim::Simulator sim;
  Recorder recorder(sim);
  sim.ScheduleAt(500'000, [&] {
    recorder.Emit(ActorKind::kHarness, 0, EventType::kClusterConfig, 0, 2, 1,
                  2);
    recorder.Emit(ActorKind::kHarness, 0, EventType::kNodeCapacity, 0, 0,
                  10000, 5000);
    recorder.Emit(ActorKind::kHarness, 3, EventType::kEngineBinding, 0, 1, 1,
                  0);
  });
  sim.ScheduleAt(1'200'000, [&] {
    recorder.Emit(ActorKind::kCluster, 0, EventType::kBorrowRequest, 2, 1,
                  400, 500);
    recorder.Emit(ActorKind::kCluster, 0, EventType::kBorrowGrant, 2, 0, 400,
                  1);
    recorder.Emit(ActorKind::kCluster, 0, EventType::kClusterStaleReport, 2,
                  1, 3, 2);
    recorder.Emit(ActorKind::kCluster, 0, EventType::kClusterRebalance, 2, 3,
                  250, 0);
  });
  sim.ScheduleAt(1'900'000, [&] {
    recorder.Emit(ActorKind::kCluster, 0, EventType::kBorrowRepay, 3, 1, 400,
                  0);
  });
  sim.Run();
  return recorder.Merged();
}

TEST(TraceExport, ClusterEventsRoundTripThroughCsv) {
  const auto events = SampleClusterEvents();
  ASSERT_EQ(events.size(), 8u);
  const auto parsed = obs::ParseCsvTrace(obs::ToCsvString(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].type, events[i].type);
    EXPECT_EQ(parsed.value()[i].actor_kind, events[i].actor_kind);
    EXPECT_EQ(parsed.value()[i].a, events[i].a);
    EXPECT_EQ(parsed.value()[i].b, events[i].b);
    EXPECT_EQ(parsed.value()[i].c, events[i].c);
  }
}

TEST(TraceExport, ClusterEventsRenderAsPerfettoInstantsOnTheClusterTrack) {
  const std::string json = obs::ToPerfettoString(SampleClusterEvents());
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);  // process name
  for (const char* name :
       {"borrow_request", "borrow_grant", "borrow_repay",
        "cluster_stale_report", "cluster_rebalance", "cluster_config",
        "node_capacity", "engine_binding"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

#if HAECHI_WATCHDOG_ENABLED

TraceEvent MonitorEvent(SimTime time, std::uint64_t seq, EventType type) {
  TraceEvent event;
  event.time = time;
  event.seq = seq;
  event.type = type;
  event.actor_kind = ActorKind::kMonitor;
  event.actor = 0;
  event.period = 1;
  return event;
}

std::size_t TruncationAlerts(const obs::SloWatchdog& watchdog) {
  std::size_t n = 0;
  for (const obs::Alert& alert : watchdog.alerts()) {
    n += alert.kind == obs::AlertKind::kTraceTruncation;
  }
  return n;
}

TEST(Watchdog, ReplaySeqGapRaisesOneTruncationAlert) {
  // Regression for silent truncation on the replay path: a wrapped ring
  // leaves a hole in an actor's seq sequence; the watchdog must flag the
  // trace as incomplete — once, no matter how many actors are truncated.
  obs::SloWatchdog watchdog;
  watchdog.OnEvent(MonitorEvent(100, 0, EventType::kPoolSample));
  watchdog.OnEvent(MonitorEvent(200, 1, EventType::kPoolSample));
  EXPECT_EQ(TruncationAlerts(watchdog), 0u);
  watchdog.OnEvent(MonitorEvent(300, 5, EventType::kPoolSample));  // gap
  EXPECT_EQ(TruncationAlerts(watchdog), 1u);
  watchdog.OnEvent(MonitorEvent(400, 9, EventType::kPoolSample));  // again
  EXPECT_EQ(TruncationAlerts(watchdog), 1u);
  EXPECT_TRUE(watchdog.Finish().ok());
}

TEST(Watchdog, LiveDropNotifySharesTheTruncationLatchWithReplay) {
  obs::SloWatchdog watchdog;
  watchdog.NotifyTruncation(1000);
  watchdog.NotifyTruncation(2000);
  EXPECT_EQ(TruncationAlerts(watchdog), 1u);
  // A later replay-side seq gap must not double-report the same run.
  watchdog.OnEvent(MonitorEvent(3000, 7, EventType::kPoolSample));
  EXPECT_EQ(TruncationAlerts(watchdog), 1u);
}

#endif  // HAECHI_WATCHDOG_ENABLED

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CountersGaugesAndSnapshotsTrackDeltas) {
  obs::MetricsRegistry metrics;
  metrics.Add("engine.faa_ops", 10);
  metrics.Set("monitor.capacity_estimate", 5000.0);
  metrics.Record("monitor.period_completions", 4500);
  metrics.SnapshotPeriod(1);
  metrics.Add("engine.faa_ops", 7);
  metrics.Set("monitor.capacity_estimate", 5100.0);
  metrics.SnapshotPeriod(2);

  EXPECT_EQ(metrics.CounterValue("engine.faa_ops"), 17);
  EXPECT_EQ(metrics.GaugeValue("monitor.capacity_estimate"), 5100.0);
  EXPECT_TRUE(metrics.Has("monitor.period_completions"));
  EXPECT_FALSE(metrics.Has("nope"));

  double period2_delta = -1.0;
  for (const auto& row : metrics.snapshots()) {
    if (row.period == 2 && row.name == "engine.faa_ops") {
      EXPECT_EQ(row.value, 17.0);
      period2_delta = row.delta;
    }
  }
  EXPECT_EQ(period2_delta, 7.0);

  const std::string csv = metrics.ToCsv().Render();
  EXPECT_NE(csv.find("period,name,kind,value,delta"), std::string::npos);
  EXPECT_NE(csv.find("engine.faa_ops"), std::string::npos);
  EXPECT_NE(csv.find("histogram_p50"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds + fault plans => byte-identical exports.

harness::ExperimentConfig TracedChaosConfig(std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 3;
  config.records = 256;
  config.qos.token_batch = 100;
  config.qos.report_lease_intervals = 8;
  config.seed = seed;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.05;
  config.faults.seed = seed * 7919 + 1;
  config.faults.Add(drop_faa);
  harness::ExperimentConfig::ClientFault fault;
  fault.client = 1;
  fault.crash_at = Seconds(2) + Millis(300);
  fault.restart_at = Seconds(3) + Millis(100);
  config.client_faults.push_back(fault);
  config.trace.enabled = true;
  return config;
}

TEST(TraceDeterminism, IdenticalRunsExportByteIdenticalTraces) {
  harness::Experiment first(TracedChaosConfig(11));
  first.Run();
  harness::Experiment second(TracedChaosConfig(11));
  second.Run();
  ASSERT_NE(first.recorder(), nullptr);
  ASSERT_NE(second.recorder(), nullptr);
#if HAECHI_TRACE_ENABLED
  EXPECT_GT(first.recorder()->TotalEmitted(), 0u);
#endif
  EXPECT_EQ(first.recorder()->TotalEmitted(), second.recorder()->TotalEmitted());
  const std::string csv_a = obs::ToCsvString(first.recorder()->Merged());
  const std::string csv_b = obs::ToCsvString(second.recorder()->Merged());
  EXPECT_EQ(csv_a, csv_b);
  EXPECT_EQ(obs::ToPerfettoString(first.recorder()->Merged()),
            obs::ToPerfettoString(second.recorder()->Merged()));
}

TEST(TraceDeterminism, ExportedFileRoundTripsThroughTheFilesystem) {
  const std::string path = testing::TempDir() + "haechi_trace_roundtrip.csv";
  harness::ExperimentConfig config = TracedChaosConfig(3);
  config.client_faults.clear();
  config.faults = rdma::FaultPlan{};
  config.measure_periods = 2;
  config.trace.out_path = path;
  harness::Experiment experiment(std::move(config));
  experiment.Run();
  ASSERT_NE(experiment.recorder(), nullptr);

  const auto text = obs::ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto parsed = obs::ParseCsvTrace(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), experiment.recorder()->Merged().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace haechi
