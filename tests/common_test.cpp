// Unit tests for common/: time helpers, ids, Status/Result, and Flags.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/flags.hpp"
#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace haechi {
namespace {

TEST(Types, DurationHelpers) {
  EXPECT_EQ(Micros(3), 3000);
  EXPECT_EQ(Millis(2), 2'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
}

TEST(Types, ToKiops) {
  EXPECT_DOUBLE_EQ(ToKiops(400'000, kSecond), 400.0);
  EXPECT_DOUBLE_EQ(ToKiops(1000, Millis(100)), 10.0);
  EXPECT_DOUBLE_EQ(ToKiops(5, 0), 0.0);  // degenerate window
}

TEST(Types, StrongIds) {
  const auto a = MakeClientId(3);
  const auto b = MakeClientId(3);
  const auto c = MakeClientId(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(Raw(c), 4u);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = ErrNotFound("missing key 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key 7");
}

TEST(Status, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(ErrInvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrPermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ErrOutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ErrResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrFailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ErrAborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(ErrUnavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrInternal("").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(ErrUnavailable("later"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--gamma",
                        "--name=zipf"};
  auto flags = Flags::Parse(6, argv, {"alpha", "beta", "gamma", "name"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.value().GetDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(flags.value().GetBool("gamma", false));
  EXPECT_EQ(flags.value().GetString("name", ""), "zipf");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  auto flags = Flags::Parse(1, argv, {"x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().GetInt("x", 7), 7);
  EXPECT_FALSE(flags.value().Has("x"));
}

TEST(Flags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  auto flags = Flags::Parse(2, argv, {"known"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(Flags, KeepsPositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--k=1", "pos2"};
  auto flags = Flags::Parse(4, argv, {"k"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=no"};
  auto flags = Flags::Parse(5, argv, {"a", "b", "c", "d"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags.value().GetBool("a", false));
  EXPECT_FALSE(flags.value().GetBool("b", true));
  EXPECT_TRUE(flags.value().GetBool("c", false));
  EXPECT_FALSE(flags.value().GetBool("d", true));
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(ParseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("garbage"), LogLevel::kWarn);  // safe default
}

TEST(Logging, ThresholdGatesEnabled) {
  const LogLevel old = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kInfo));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kError));
  Logger::set_threshold(LogLevel::kTrace);
  EXPECT_TRUE(Logger::Enabled(LogLevel::kDebug));
  Logger::set_threshold(old);
}

TEST(Assertions, PreconditionAborts) {
  EXPECT_DEATH(HAECHI_EXPECTS(1 == 2), "Precondition");
  EXPECT_DEATH(HAECHI_ENSURES(false), "Postcondition");
  EXPECT_DEATH(HAECHI_ASSERT(false), "Invariant");
}

}  // namespace
}  // namespace haechi
