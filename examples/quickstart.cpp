// Quickstart: the Haechi public API from the ground up — no experiment
// harness. Builds a two-node simulated RDMA cluster, a memory-resident KV
// store, a QoS monitor with one admitted client, wires a client QoS engine
// to the store, performs a few thousand token-gated one-sided GETs, and
// prints the token-accounting evidence.
//
//   ./quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "core/monitor.hpp"
#include "kvstore/client.hpp"
#include "kvstore/server.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

using namespace haechi;

int main() {
  // 1. A simulator and a fabric with the paper-calibrated timing model
  //    (C_L = 400 KIOPS per client, C_G = 1570 KIOPS at the data node).
  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;  // 2% scale keeps this demo instant
  rdma::Fabric fabric(sim, params, /*seed=*/1);
  rdma::Node& data_node = fabric.AddNode("data-node", rdma::NodeRole::kData);
  rdma::Node& client_node = fabric.AddNode("client-1");

  // 2. The key-value store on the data node: records live in registered
  //    memory, so a GET is a single one-sided READ.
  kvstore::KvServer server(data_node,
                           {.record_count = 1024, .payload_bytes = 4096});
  server.PopulateDeterministic();

  // 3. The QoS monitor: admission control + token management + Algorithm 1.
  core::QosConfig qos;  // paper defaults: T=1s, delta=1ms, B=1000
  qos.token_batch = 100;
  // This demo keeps payload copying ON (every GET moves real bytes), so
  // the engine's issue-ahead depth must fit the KV client's buffer pool.
  qos.max_backend_outstanding = 128;
  core::QosMonitor monitor(sim, qos, data_node,
                           params.GlobalCapacityIops(),
                           params.LocalCapacityIops());

  // 4. Wire one client: a data QP for GETs, a QoS QP for the engine's
  //    silent FAA/report ops, and a control QP for the monitor's messages.
  auto& data_cq = client_node.CreateCq();
  auto& data_srv_cq = data_node.CreateCq();
  auto& data_qp = client_node.CreateQp(data_cq, data_cq, 1u << 20);
  auto& data_srv_qp = data_node.CreateQp(data_srv_cq, data_srv_cq);
  fabric.Connect(data_qp, data_srv_qp);

  auto& qos_cq = client_node.CreateCq();
  auto& qos_srv_cq = data_node.CreateCq();
  auto& qos_qp = client_node.CreateQp(qos_cq, qos_cq);
  auto& qos_srv_qp = data_node.CreateQp(qos_srv_cq, qos_srv_cq);
  fabric.Connect(qos_qp, qos_srv_qp);

  auto& ctrl_cq = client_node.CreateCq();
  auto& ctrl_recv_cq = client_node.CreateCq();
  auto& ctrl_srv_cq = data_node.CreateCq();
  auto& ctrl_qp = client_node.CreateQp(ctrl_cq, ctrl_recv_cq);
  auto& ctrl_srv_qp = data_node.CreateQp(ctrl_srv_cq, ctrl_srv_cq);
  fabric.Connect(ctrl_qp, ctrl_srv_qp);

  // 5. Admission: reserve 10 KIOPS for this client (well inside both
  //    capacity constraints at 2% scale: C_G ≈ 31.4K, C_L = 8K... so use
  //    6 KIOPS to respect the local constraint).
  const auto client_id = MakeClientId(0);
  auto wiring = monitor.AdmitClient(client_id, /*reservation=*/6000,
                                    /*limit=*/0, ctrl_srv_qp);
  if (!wiring.ok()) {
    std::fprintf(stderr, "admission failed: %s\n",
                 wiring.status().ToString().c_str());
    return 1;
  }
  std::printf("admitted: reservation 6000 IOPS of %lld total\n",
              static_cast<long long>(monitor.admission().AggregateCapacity()));

  // 6. The client QoS engine, backed by the KV client.
  kvstore::KvClient kv(client_node, data_qp, server.view(), {});
  core::ClientQosEngine engine(sim, client_id, qos, client_node, qos_qp,
                               ctrl_qp, wiring.value());
  engine.SetIoBackend([&kv](std::uint64_t key, bool /*is_write*/,
                            core::ClientQosEngine::CompleteFn done) {
    return kv.GetOneSided(key, [done = std::move(done)](
                                   const kvstore::KvClient::Completion& c) {
      if (!c.status.ok()) {
        std::fprintf(stderr, "GET failed: %s\n", c.status.ToString().c_str());
      }
      done();
    });
  });

  // 7. Run: the monitor starts QoS periods; the app submits 8000 GETs at
  //    t=0 (above the reservation — the excess draws global pool tokens).
  monitor.Start(0);
  sim.ScheduleAt(Millis(1), [&] {
    for (std::uint64_t i = 0; i < 8000; ++i) {
      const Status s = engine.Submit(i % 1024, [] {});
      if (!s.ok()) break;
    }
  });
  sim.RunUntil(Seconds(2));

  // 8. Evidence: tokens consumed by source, silent control-plane traffic.
  const auto& st = engine.stats();
  std::printf("completed I/Os:        %lld\n",
              static_cast<long long>(st.completed_total));
  std::printf("reservation tokens:    %lld\n",
              static_cast<long long>(st.tokens_from_reservation));
  std::printf("global-pool tokens:    %lld (fetched with %llu remote FAAs, "
              "batch=%lld)\n",
              static_cast<long long>(st.tokens_from_pool),
              static_cast<unsigned long long>(st.faa_ops),
              static_cast<long long>(qos.token_batch));
  std::printf("silent report writes:  %llu (8-byte one-sided WRITEs)\n",
              static_cast<unsigned long long>(st.report_writes));
  std::printf("monitor conversions:   %llu, capacity estimate %lld\n",
              static_cast<unsigned long long>(monitor.stats().conversions),
              static_cast<long long>(monitor.estimator().Estimate()));
  std::printf("data-node CPU was involved in 0 of the %lld data I/Os\n",
              static_cast<long long>(st.completed_total));
  return 0;
}
