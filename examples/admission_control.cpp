// Admission control walk-through (paper §II-C, Definition 2): why both the
// aggregate (C_G) and the local (C_L) capacity constraints exist for
// one-sided I/O, shown against the calibrated fabric capacities.
//
// Run:  ./admission_control
#include <cstdio>

#include "core/admission.hpp"
#include "net/model_params.hpp"

using namespace haechi;

namespace {

void Try(core::AdmissionController& adm, std::uint32_t id,
         std::int64_t reservation_iops, const char* why) {
  const Status s = adm.Admit(MakeClientId(id), reservation_iops);
  std::printf("  admit client %u at %7lld IOPS: %-8s %s\n", id,
              static_cast<long long>(reservation_iops),
              s.ok() ? "ADMITTED" : "REJECTED", s.ok() ? why : why);
  if (!s.ok()) std::printf("      reason: %s\n", s.ToString().c_str());
}

}  // namespace

int main() {
  const net::ModelParams params;  // the paper's calibrated capacities
  const auto global =
      static_cast<std::int64_t>(params.GlobalCapacityIops());
  const auto local = static_cast<std::int64_t>(params.LocalCapacityIops());
  std::printf("profiled capacities: C_G = %lld IOPS (aggregate), "
              "C_L = %lld IOPS (single client)\n\n",
              static_cast<long long>(global), static_cast<long long>(local));

  core::AdmissionController adm(global, local);

  std::printf("the local constraint (one-sided I/O needs several clients "
              "to saturate the node):\n");
  Try(adm, 1, 500'000,
      "-- beyond what one client's NIC can ever deliver");
  Try(adm, 1, 400'000, "-- exactly C_L: the largest admissible reservation");

  std::printf("\nthe aggregate constraint:\n");
  Try(adm, 2, 400'000, "");
  Try(adm, 3, 400'000, "");
  Try(adm, 4, 400'000, "-- would push the total past C_G");
  Try(adm, 4, 300'000, "");
  std::printf("  total reserved: %lld of %lld IOPS\n",
              static_cast<long long>(adm.TotalReserved()),
              static_cast<long long>(adm.AggregateCapacity()));

  std::printf("\nelastic SLOs (Update) and departures (Release):\n");
  const Status grow = adm.Update(MakeClientId(4), 360'000);
  std::printf("  grow client 4 to 360K: %s (within the remaining "
              "headroom)\n",
              grow.ToString().c_str());
  const Status too_far = adm.Update(MakeClientId(4), 400'000);
  std::printf("  grow client 4 to 400K: %s\n", too_far.ToString().c_str());
  const Status release = adm.Release(MakeClientId(2));
  std::printf("  release client 2:      %s\n", release.ToString().c_str());
  const Status regrow = adm.Update(MakeClientId(4), 400'000);
  std::printf("  grow client 4 to 400K: %s (capacity freed by the "
              "departure)\n",
              regrow.ToString().c_str());
  std::printf("  total reserved: %lld of %lld IOPS across %zu clients\n",
              static_cast<long long>(adm.TotalReserved()),
              static_cast<long long>(adm.AggregateCapacity()),
              adm.AdmittedCount());

  std::printf("\nExample 2 from the paper (C_G=100, C_L=50): admission "
              "passes, but a synchronized burst can still violate the\n"
              "local constraint at runtime — which is why Haechi monitors "
              "continuously instead of trusting admission alone.\n");
  core::AdmissionController example(100, 50);
  Try(example, 1, 40, "");
  for (std::uint32_t i = 2; i <= 5; ++i) Try(example, i, 10, "");
  return 0;
}
