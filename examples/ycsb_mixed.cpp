// YCSB-style mixed read/write workloads under Haechi QoS. The paper
// evaluates workload C (read-only); this example extends the same setup to
// YCSB-A (50% writes) and YCSB-B (5% writes): writes are record-sized
// one-sided WRITEs and consume tokens exactly like reads, so the
// reservation guarantee carries over unchanged.
//
// Run:  ./ycsb_mixed [--scale=0.05]
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace haechi;
using namespace haechi::bench;

namespace {

struct WorkloadDef {
  const char* name;
  double write_fraction;
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  constexpr WorkloadDef kWorkloads[] = {
      {"YCSB-C (0% writes, the paper's setup)", 0.0},
      {"YCSB-B (5% writes)", 0.05},
      {"YCSB-A (50% writes)", 0.50},
  };

  for (const auto& workload : kWorkloads) {
    harness::ExperimentConfig config;
    config.net.capacity_scale = args.scale == 1.0 ? 0.05 : args.scale;
    args.scale = config.net.capacity_scale;
    config.mode = harness::Mode::kHaechi;
    config.warmup = Seconds(1);
    config.measure_periods = 4;
    config.qos.token_batch = 100;
    config.key_kind = workload::KeyChooser::Kind::kZipfian;  // YCSB default

    const auto cap = CapacityTokens(config);
    const auto reservations = workload::ZipfGroupShare(cap * 8 / 10, 10, 5, 0.6);
    for (const auto r : reservations) {
      harness::ClientSpec spec;
      spec.reservation = r;
      spec.demand = r + cap / 10;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      spec.write_fraction = workload.write_fraction;
      config.clients.push_back(spec);
    }
    harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();

    int met = 0;
    for (std::uint32_t c = 0; c < 10; ++c) {
      met += r.series.ClientMinPerPeriod(MakeClientId(c)) >=
             reservations[c] * 98 / 100;
    }
    std::printf("%-40s  total %7.0f KIOPS   reservations met %d/10\n",
                workload.name, NormKiops(r.total_kiops, args), met);
  }
  std::printf("\nwrites are one-sided, record-sized, token-gated ops: the "
              "QoS guarantee is op-type agnostic.\n");
  return 0;
}
