// Multi-data-node Haechi (the paper's §V future work): one cluster-wide
// reservation, demand skewed across two data nodes and flipping mid-run.
// Watch the cluster coordinator chase the demand with per-node reservation
// splits while the cluster-wide guarantee holds throughout.
//
// Run:  ./multi_server [--scale=0.05]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "harness/cluster_experiment.hpp"

using namespace haechi;
using namespace haechi::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  harness::ClusterExperimentConfig config;
  config.net.capacity_scale = args.scale == 1.0 ? 0.05 : args.scale;
  args.scale = config.net.capacity_scale;
  config.data_nodes = 2;
  config.warmup = Seconds(2);
  config.measure_periods = 12;
  config.qos.token_batch = 100;

  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());

  // One managed client with a cluster-wide reservation, 85% of its demand
  // on node 0...
  harness::ClusterClientSpec managed;
  managed.reservation = cap / 5;
  managed.demand_per_node = {cap / 5 * 85 / 100, cap / 5 * 15 / 100};
  // ...competing with an unmanaged hog on each node.
  harness::ClusterClientSpec hog;
  hog.reservation = 0;
  hog.demand_per_node = {cap, cap};
  config.clients = {managed, hog};
  // Both live under one tenant sized to their combined reservation.
  config.tenants = {{managed.reservation + hog.reservation, 0}};

  // Mid-run the managed client's demand flips to node 1.
  config.shift_at = config.warmup + Seconds(6);
  config.shifted_demand = {
      {cap / 5 * 15 / 100, cap / 5 * 85 / 100},
      {cap, cap},
  };

  harness::ClusterExperiment exp(std::move(config));
  auto& sim = exp.simulator();
  // Sample the split each period, just after the rebalancer runs.
  std::vector<std::vector<std::int64_t>> splits;
  for (int p = 0; p < 12; ++p) {
    sim.ScheduleAt(Seconds(2) + p * Seconds(1) + Millis(999) - Micros(200),
                   [&exp, &splits] {
                     splits.push_back(
                         exp.coordinator().SplitOf(MakeClientId(0)).value());
                   });
  }
  harness::ClusterExperimentResult r = exp.Run();

  std::printf("managed client: cluster-wide reservation %.0f KIOPS; demand "
              "85/15 across two nodes, flipping to 15/85 at period 6\n\n",
              NormKiops(static_cast<double>(cap / 5) / 1e3, args));
  stats::Table table({"period", "split node0", "split node1",
                      "served node0", "served node1", "cluster total",
                      "SLO"});
  for (std::size_t p = 0; p < r.node_series[0].Periods(); ++p) {
    const auto id = MakeClientId(0);
    const std::int64_t n0 = r.node_series[0].At(p, id);
    const std::int64_t n1 = r.node_series[1].At(p, id);
    auto k = [&](double v) {
      return stats::Table::Num(NormKiops(v / 1e3, args));
    };
    table.AddRow(
        {std::to_string(p),
         p < splits.size() ? k(static_cast<double>(splits[p][0])) : "-",
         p < splits.size() ? k(static_cast<double>(splits[p][1])) : "-",
         k(static_cast<double>(n0)), k(static_cast<double>(n1)),
         k(static_cast<double>(n0 + n1)),
         n0 + n1 >= cap / 5 * 95 / 100 ? "met" : "missed"});
  }
  table.Print();
  std::printf("\ncoordinator: %llu rebalances moved %llu tokens "
              "(%llu moves rejected by per-node admission)\n",
              static_cast<unsigned long long>(r.cluster_stats.rebalances),
              static_cast<unsigned long long>(r.cluster_stats.tokens_moved),
              static_cast<unsigned long long>(
                  r.cluster_stats.rejected_moves));
  return 0;
}
