// Adaptive capacity estimation in action: a narrated version of the
// paper's Set 4. Background traffic outside Haechi's control starts
// consuming ~15% of the data node mid-run; the monitor's Algorithm 1
// detects the change from the clients' silent reports and re-sizes the
// token allocation, restoring the reservation guarantee; when the
// congestion clears, eta-increments grow the estimate back.
//
// Run:  ./adaptive_capacity [--scale=0.05]
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace haechi;
using namespace haechi::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/24);
  if (args.scale == 1.0) config.net.capacity_scale = 0.05;
  args.scale = config.net.capacity_scale;  // keep KIOPS normalisation right
  config.warmup = Seconds(1);
  config.mode = harness::Mode::kHaechi;

  const auto cap = CapacityTokens(config);
  const auto reservations =
      workload::ZipfGroupShare(cap * 8 / 10, 10, 5, 0.6);
  for (const auto r : reservations) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 10;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }

  // Congestion window: [1/3, 2/3) of the measured interval.
  const auto third =
      static_cast<SimTime>(config.measure_periods / 3) * config.qos.period;
  config.background_demand = cap * 12 / 100 / 10;
  config.background_on = config.warmup + third;
  config.background_off = config.warmup + 2 * third;

  const auto periods = config.measure_periods;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();

  std::printf("Zipf reservations, 80%% of capacity reserved; background "
              "traffic eats ~12%% during the middle third.\n\n");
  stats::Table table({"period", "phase", "total KIOPS", "estimate KIOPS",
                      "C1 KIOPS", "C1 SLO"});
  for (std::size_t p = 0; p < periods; ++p) {
    const char* phase =
        p < periods / 3 ? "calm" : (p < 2 * periods / 3 ? "CONGESTED" : "calm");
    const double estimate =
        p < r.capacity_trace.size()
            ? NormKiops(static_cast<double>(
                            r.capacity_trace[r.capacity_trace.size() -
                                             periods + p]
                                .estimate) /
                            1e3,
                        args)
            : 0;
    const double c1 = NormKiops(
        static_cast<double>(r.series.At(p, MakeClientId(0))) / 1e3, args);
    const bool slo =
        r.series.At(p, MakeClientId(0)) >= reservations[0] * 98 / 100;
    table.AddRow({std::to_string(p), phase,
                  stats::Table::Num(NormKiops(
                      static_cast<double>(r.series.PeriodTotal(p)) / 1e3,
                      args)),
                  stats::Table::Num(estimate), stats::Table::Num(c1),
                  slo ? "met" : "missed"});
  }
  table.Print();
  std::printf("\nwatch the estimate column: it tracks the capacity step "
              "down within a few periods (window-averaged reports) and "
              "climbs back in eta = 3%% increments once every token is "
              "consumed again (Algorithm 1).\n");
  return 0;
}
