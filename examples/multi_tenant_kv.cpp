// Multi-tenant storage with per-tenant SLOs — the scenario the paper's
// introduction motivates. Four tenants share one data node:
//
//   gold    high reservation, heavy demand       -> meets its SLO
//   silver  medium reservation, medium demand    -> meets its SLO
//   bronze  no reservation, best-effort          -> gets leftover capacity
//   rogue   no reservation, floods the system,   -> shed at its engine,
//           capped by a limit                       cannot hurt the others
//
// Run:  ./multi_tenant_kv [--scale=0.05]
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace haechi;
using namespace haechi::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/6);
  // Demo-sized by default; pass --scale=1 for the paper's full capacities.
  if (args.scale == 1.0) config.net.capacity_scale = 0.05;
  args.scale = config.net.capacity_scale;  // keep KIOPS normalisation right
  config.warmup = Seconds(1);
  config.mode = harness::Mode::kHaechi;

  const auto cap = CapacityTokens(config);
  const char* names[] = {"gold", "silver", "bronze", "rogue"};

  harness::ClientSpec gold;
  gold.reservation = cap / 4;  // at the local capacity limit
  gold.demand = cap / 3;
  gold.pattern = workload::RequestPattern::kOpenLoop;

  harness::ClientSpec silver;
  silver.reservation = cap / 8;
  silver.demand = cap / 6;
  silver.pattern = workload::RequestPattern::kOpenLoop;

  harness::ClientSpec bronze;  // best effort: no reservation
  bronze.demand = cap / 4;
  bronze.pattern = workload::RequestPattern::kOpenLoop;

  harness::ClientSpec rogue;  // floods; limited to a sliver
  rogue.demand = cap * 4;
  rogue.limit = cap / 20;
  rogue.pattern = workload::RequestPattern::kOpenLoop;

  config.clients = {gold, silver, bronze, rogue};
  config.qos.max_engine_queue = 1u << 16;  // rogue floods get shed early

  const auto specs = config.clients;
  const auto periods = config.measure_periods;
  const auto period = config.qos.period;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();

  std::printf("four tenants sharing one data node (capacity %.0f KIOPS)\n\n",
              NormKiops(static_cast<double>(cap) / 1e3, args));
  stats::Table table({"tenant", "reservation", "limit", "demand",
                      "served KIOPS", "worst period", "SLO"});
  for (std::uint32_t c = 0; c < specs.size(); ++c) {
    const auto id = MakeClientId(c);
    const double served = ToKiops(
        r.series.ClientTotal(id), static_cast<SimDuration>(periods) * period);
    const double worst =
        static_cast<double>(r.series.ClientMinPerPeriod(id)) / 1e3;
    const bool slo_ok =
        worst >= static_cast<double>(specs[c].reservation) / 1e3 * 0.98;
    auto k = [&](std::int64_t v) {
      return v > 0 ? stats::Table::Num(
                         NormKiops(static_cast<double>(v) / 1e3, args))
                   : std::string("-");
    };
    table.AddRow({names[c], k(specs[c].reservation), k(specs[c].limit),
                  k(specs[c].demand), stats::Table::Num(NormKiops(served, args)),
                  stats::Table::Num(NormKiops(worst, args)),
                  slo_ok ? "met" : "MISSED"});
  }
  table.Print();

  std::printf("\nrogue tenant: %llu submissions shed at its own engine "
              "queue, %llu throttle events at its limit — the other "
              "tenants' SLOs are untouched.\n",
              static_cast<unsigned long long>(
                  r.engine_stats[3].rejected_submits),
              static_cast<unsigned long long>(
                  r.engine_stats[3].limit_throttle_events));
  std::printf("total served: %.0f KIOPS (work-conserving: bronze absorbs "
              "whatever gold/silver leave unused)\n",
              NormKiops(r.total_kiops, args));
  return 0;
}
