// haechi_sim — command-line experiment runner.
//
// Runs a single Haechi experiment described entirely by flags and prints a
// per-client summary table (optionally exporting the per-period series as
// CSV). Lets users explore configurations beyond the canned paper figures
// without writing C++.
//
// Examples:
//   # the paper's Exp 2A zipf at 5% scale
//   haechi_sim --mode=haechi --distribution=zipf --reserved-pct=90
//
//   # 4 tenants, one limited, bare system comparison
//   haechi_sim --mode=bare --clients=4 --pattern=burst
//
//   # export plot data
//   haechi_sim --csv=/tmp/run.csv --periods=30 --scale=1
//
//   # 4-node cluster, 2 tenants, adaptive cross-server borrowing
//   haechi_sim --cluster=4 --tenants=2 --borrow=adaptive
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "cluster/borrow.hpp"
#include "common/flags.hpp"
#include "harness/cluster_experiment.hpp"
#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

using namespace haechi;

namespace {

constexpr const char* kUsage = R"(haechi_sim - run one Haechi QoS experiment

flags (all optional):
  --mode=haechi|basic|bare   QoS mechanism            [haechi]
  --runtime=sim|threads      backend: discrete-event simulator, or real
                             threads on shared memory (wall-clock; results
                             are statistically, not bitwise, reproducible;
                             haechi/basic modes only)                 [sim]
  --shards=K                 threads only: split the global token pool
                             across K cache-line shards (monitor
                             rebalances them on its check tick)         [1]
  --fetch-batch=B            threads only: one remote FAA draws B token
                             batches (doorbell-style chaining)          [1]
  --workers=N                threads only: worker threads multiplexing
                             the client I/O loops (0 = one per client)  [0]
  --cluster=D                sharded deployment across D data nodes with
                             the cluster coordinator (sim runtime,
                             haechi mode only; 0 = single node)          [0]
  --tenants=T                cluster only: stripe clients over T tenant
                             envelopes                                   [1]
  --borrow=off|static|adaptive   cluster only: cross-server token
                             borrowing policy                          [off]
  --clients=N                number of clients        [10]
  --distribution=uniform|zipf|spike   reservations    [zipf]
  --reserved-pct=P           % of capacity reserved   [90]
  --pattern=open|burst|rate  request pattern          [open]
  --write-fraction=F         YCSB write mix           [0]
  --demand-factor=F          demand = F * (R + pool)  [1.0]
  --limit-factor=F           limit = F * R (0 = none) [0]
  --periods=N                measured QoS periods     [8]
  --warmup-seconds=S         warm-up                  [2]
  --scale=F                  capacity scale           [0.05]
  --seed=N                   RNG seed                 [42]
  --background-pct=P         background load, % of capacity [0]
  --csv=PATH                 export per-period series
  --trace-out=PATH           export the QoS event trace (.json = Perfetto,
                             anything else = CSV for haechi_audit)
  --trace-detail             also trace per-I/O RDMA/KV events
  --trace-ring=N             per-actor trace ring capacity, events
                             [65536; 2097152 with --runtime=threads]
  --metrics-out=PATH         export per-period metrics snapshots as CSV
  --prom-out=PATH            export the same snapshots as Prometheus text
                             exposition (haechi_* series, period label)
  --alerts-out=PATH          run the online SLO watchdog; write alerts as
                             JSONL (one alert object per line)
  --status-interval=N        print a live status line to stderr every N
                             QoS periods (implies the watchdog; with
                             --runtime=threads the lines are replayed from
                             the trace after the run, with per-shard pool
                             occupancy when --shards > 1)
  --controller=off|conservative|aggressive   closed-loop control plane:
                             react to watchdog alerts with sum-neutral
                             corrective actions at period boundaries
                             (implies the watchdog)                    [off]
  --control-rules=LIST       rules the controller may act on: a subset of
                             w1,w5,w6,lease, or all|none              [all]
  --control-api=P:POLICY[,P:POLICY...]   scripted runtime policy swaps:
                             at measured period P switch the running
                             controller to POLICY
  --progress-events=N        stderr heartbeat every N simulator events
)";

/// Prints the per-client summary table shared by both runtimes; returns
/// the number of clients whose minimum per-period completions met their
/// reservation.
int PrintClientTable(const stats::PeriodSeries& series,
                     const std::vector<std::int64_t>& reservations,
                     std::size_t periods, double scale) {
  stats::Table table({"client", "reservation", "mean/period", "min/period",
                      "SLO"});
  int met = 0;
  for (std::uint32_t c = 0; c < reservations.size(); ++c) {
    const auto id = MakeClientId(c);
    const double mean = static_cast<double>(series.ClientTotal(id)) /
                        static_cast<double>(periods);
    const auto min = series.ClientMinPerPeriod(id);
    const bool ok = min >= reservations[c] * 98 / 100;
    met += ok;
    auto norm = [&](double v) {
      return stats::Table::Num(v / 1e3 / scale);
    };
    table.AddRow({"C" + std::to_string(c + 1),
                  norm(static_cast<double>(reservations[c])), norm(mean),
                  norm(static_cast<double>(min)), ok ? "met" : "MISSED"});
  }
  table.Print();
  return met;
}

/// Controller summary goes to stderr next to the watchdog line (stdout
/// stays byte-identical with and without the control plane).
void PrintControllerSummary(const core::control::QosController* controller) {
  if (controller == nullptr) return;
  const auto& s = controller->stats();
  const std::string policy{core::control::ToString(controller->policy())};
  std::fprintf(
      stderr,
      "controller: policy=%s, %llu alert(s) -> %llu resize(s), "
      "%llu eta-scaling(s), %llu forced conversion(s), %llu readmit(s); "
      "%llu recovery(ies)\n",
      policy.c_str(), static_cast<unsigned long long>(s.alerts),
      static_cast<unsigned long long>(s.resizes),
      static_cast<unsigned long long>(s.eta_scalings),
      static_cast<unsigned long long>(s.forced_conversions),
      static_cast<unsigned long long>(s.readmits),
      static_cast<unsigned long long>(s.recoveries));
}

int Run(int argc, const char* const* argv) {
  auto parsed = Flags::Parse(
      argc, argv,
      {"mode", "runtime", "shards", "fetch-batch", "workers", "cluster",
       "tenants", "borrow", "clients",
       "distribution", "reserved-pct", "pattern", "write-fraction",
       "demand-factor", "limit-factor", "periods", "warmup-seconds", "scale",
       "seed", "background-pct", "csv", "trace-out", "trace-detail",
       "trace-ring",
       "metrics-out", "prom-out", "alerts-out", "status-interval",
       "controller", "control-rules", "control-api",
       "progress-events", "help"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = parsed.value();
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  harness::ExperimentConfig config;
  const std::string mode = flags.GetString("mode", "haechi");
  if (mode == "haechi") {
    config.mode = harness::Mode::kHaechi;
  } else if (mode == "basic") {
    config.mode = harness::Mode::kBasicHaechi;
  } else if (mode == "bare") {
    config.mode = harness::Mode::kBare;
  } else {
    std::fprintf(stderr, "unknown --mode=%s\n%s", mode.c_str(), kUsage);
    return 2;
  }

  config.net.capacity_scale = flags.GetDouble("scale", 0.05);
  config.warmup = Seconds(flags.GetInt("warmup-seconds", 2));
  config.measure_periods =
      static_cast<std::size_t>(flags.GetInt("periods", 8));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.qos.token_batch =
      std::max<std::int64_t>(10, static_cast<std::int64_t>(
                                     1000 * config.net.capacity_scale));

  const auto clients =
      static_cast<std::size_t>(flags.GetInt("clients", 10));
  const auto cap = static_cast<std::int64_t>(
      config.net.GlobalCapacityIops() * ToSeconds(config.qos.period));
  const auto local =
      static_cast<std::int64_t>(config.net.LocalCapacityIops());
  const std::int64_t reserved =
      cap * flags.GetInt("reserved-pct", 90) / 100;
  const std::int64_t pool = cap - reserved;

  const std::string distribution = flags.GetString("distribution", "zipf");
  std::vector<std::int64_t> reservations;
  if (distribution == "uniform") {
    reservations = workload::UniformShare(reserved, clients);
  } else if (distribution == "zipf") {
    // The paper pairs clients into groups; with an odd client count fall
    // back to one group per client.
    const std::size_t groups =
        clients % 2 == 0 ? std::max<std::size_t>(1, clients / 2) : clients;
    reservations = workload::ZipfGroupShare(reserved, clients, groups, 0.6);
  } else if (distribution == "spike") {
    const std::size_t hot = std::max<std::size_t>(1, clients / 3);
    const std::int64_t hot_each = std::min(
        local, reserved / static_cast<std::int64_t>(hot) * 2 / 3);
    const std::int64_t cold_each =
        (reserved - hot_each * static_cast<std::int64_t>(hot)) /
        static_cast<std::int64_t>(clients - hot);
    reservations = workload::SpikeShare(clients, hot, hot_each, cold_each);
  } else {
    std::fprintf(stderr, "unknown --distribution=%s\n%s",
                 distribution.c_str(), kUsage);
    return 2;
  }

  const std::string pattern = flags.GetString("pattern", "open");
  workload::RequestPattern request_pattern;
  if (pattern == "open") {
    request_pattern = workload::RequestPattern::kOpenLoop;
  } else if (pattern == "burst") {
    request_pattern = workload::RequestPattern::kBurst;
  } else if (pattern == "rate") {
    request_pattern = workload::RequestPattern::kConstantRate;
  } else {
    std::fprintf(stderr, "unknown --pattern=%s\n%s", pattern.c_str(),
                 kUsage);
    return 2;
  }

  const double demand_factor = flags.GetDouble("demand-factor", 1.0);
  const double limit_factor = flags.GetDouble("limit-factor", 0.0);
  for (auto r : reservations) {
    r = std::min(r, local);  // keep within the admissible region
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = static_cast<std::int64_t>(
        static_cast<double>(r + pool) * demand_factor);
    spec.pattern = request_pattern;
    spec.write_fraction = flags.GetDouble("write-fraction", 0.0);
    if (limit_factor > 0) {
      spec.limit = static_cast<std::int64_t>(static_cast<double>(r) *
                                             limit_factor);
    }
    config.clients.push_back(spec);
  }

  const std::int64_t background_pct = flags.GetInt("background-pct", 0);
  if (background_pct > 0) {
    config.background_demand =
        cap * background_pct / 100 / static_cast<std::int64_t>(clients);
  }

  config.trace.out_path = flags.GetString("trace-out", "");
  config.trace.metrics_out = flags.GetString("metrics-out", "");
  config.trace.prom_out = flags.GetString("prom-out", "");
  config.trace.detail = flags.Has("trace-detail");
  config.trace.enabled = !config.trace.out_path.empty() ||
                         !config.trace.metrics_out.empty() ||
                         !config.trace.prom_out.empty();
  // Rings grow lazily, so a generous capacity only costs what a run
  // actually emits. The threads runtime sustains two orders of magnitude
  // more I/O than the old one-thread-per-client design, so its protocol
  // event streams outgrow the sim default; size the ring so A1 (dense
  // per-actor sequences) holds on a full CLI run.
  const std::int64_t trace_ring = flags.GetInt(
      "trace-ring",
      flags.GetString("runtime", "sim") == "threads" ? (1 << 21) : (1 << 16));
  if (trace_ring < 1) {
    std::fprintf(stderr, "--trace-ring must be >= 1\n");
    return 2;
  }
  config.trace.ring_capacity = static_cast<std::size_t>(trace_ring);

  const std::string alerts_out = flags.GetString("alerts-out", "");
  const auto status_interval =
      static_cast<std::uint32_t>(flags.GetInt("status-interval", 0));
#if HAECHI_WATCHDOG_ENABLED
  config.watchdog.alerts_out = alerts_out;
  config.watchdog.status_interval = status_interval;
#else
  if (!alerts_out.empty() || status_interval > 0) {
    std::fprintf(stderr,
                 "warning: built with HAECHI_WATCHDOG=OFF; "
                 "--alerts-out/--status-interval are ignored\n");
  }
#endif

  // --- closed-loop controller flags --------------------------------------
  const std::string controller_name = flags.GetString("controller", "off");
  if (!core::control::PolicyFromName(controller_name,
                                     config.control.policy)) {
    std::fprintf(stderr, "unknown --controller=%s\n%s",
                 controller_name.c_str(), kUsage);
    return 2;
  }
  const auto rule_mask =
      core::control::ParseRuleMask(flags.GetString("control-rules", "all"));
  if (!rule_mask.ok()) {
    std::fprintf(stderr, "--control-rules: %s\n%s",
                 rule_mask.status().ToString().c_str(), kUsage);
    return 2;
  }
  config.control.rules = rule_mask.value();
  const std::string control_api = flags.GetString("control-api", "");
  for (std::size_t pos = 0; pos < control_api.size();) {
    std::size_t comma = control_api.find(',', pos);
    if (comma == std::string::npos) comma = control_api.size();
    const std::string entry = control_api.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    core::control::Policy swap_policy{};
    char* period_end = nullptr;
    const unsigned long swap_period =
        std::strtoul(entry.c_str(), &period_end, 10);
    if (colon == std::string::npos || colon == 0 ||
        period_end != entry.c_str() + colon ||
        !core::control::PolicyFromName(entry.substr(colon + 1),
                                       swap_policy)) {
      std::fprintf(stderr,
                   "--control-api expects PERIOD:POLICY[,PERIOD:POLICY...]"
                   ", got \"%s\"\n%s",
                   entry.c_str(), kUsage);
      return 2;
    }
    config.control.api.emplace_back(
        static_cast<std::uint32_t>(swap_period), swap_policy);
    pos = comma + 1;
  }
#if !HAECHI_WATCHDOG_ENABLED
  if (config.control.armed()) {
    std::fprintf(stderr,
                 "warning: built with HAECHI_WATCHDOG=OFF; the controller "
                 "rides the watchdog and is ignored\n");
    config.control = {};
  }
#endif

  const auto periods = config.measure_periods;
  const auto scale = config.net.capacity_scale;
  const std::string csv_path_flag = flags.GetString("csv", "");
  const std::string trace_path_flag = flags.GetString("trace-out", "");

  // --- cluster mode: D data nodes behind the cluster coordinator ---------
  const auto cluster_nodes = static_cast<std::size_t>(
      std::max<std::int64_t>(flags.GetInt("cluster", 0), 0));
  const auto tenant_count = static_cast<std::size_t>(
      std::max<std::int64_t>(flags.GetInt("tenants", 1), 1));
  const std::string borrow = flags.GetString("borrow", "off");
  if (cluster_nodes == 0 && (flags.Has("tenants") || flags.Has("borrow"))) {
    std::fprintf(stderr, "--tenants/--borrow require --cluster=D\n");
    return 2;
  }
  if (cluster_nodes > 0) {
    if (flags.GetString("runtime", "sim") != "sim" ||
        config.mode != harness::Mode::kHaechi) {
      std::fprintf(stderr,
                   "--cluster runs on --runtime=sim --mode=haechi only\n");
      return 2;
    }
    if (background_pct > 0 || !csv_path_flag.empty()) {
      std::fprintf(stderr,
                   "--cluster does not support --background-pct or --csv\n");
      return 2;
    }
    cluster::BorrowPolicy policy = cluster::BorrowPolicy::kOff;
    if (borrow == "static") {
      policy = cluster::BorrowPolicy::kStatic;
    } else if (borrow == "adaptive") {
      policy = cluster::BorrowPolicy::kAdaptive;
    } else if (borrow != "off") {
      std::fprintf(stderr, "unknown --borrow=%s\n%s", borrow.c_str(),
                   kUsage);
      return 2;
    }

    harness::ClusterExperimentConfig cc;
    cc.data_nodes = cluster_nodes;
    cc.net = config.net;
    cc.qos = config.qos;
    cc.warmup = config.warmup;
    cc.measure_periods = config.measure_periods;
    cc.seed = config.seed;
    cc.trace = config.trace;
    cc.watchdog = config.watchdog;
    cc.control = config.control;
    cc.cluster.borrow.policy = policy;
    // Borrow knobs scale with the scenario, not the wall clock.
    cc.cluster.dry_watermark = config.qos.token_batch * 5;
    cc.cluster.lender_floor = config.qos.token_batch * 10;
    cc.cluster.borrow.quota = std::max<std::int64_t>(cap / 20, 1);
    cc.cluster.borrow.min_quota = config.qos.token_batch;
    cc.cluster.borrow.max_quota = std::max<std::int64_t>(cap / 4, 1);

    // Stripe clients round-robin over the tenants, and lean each client's
    // demand on a home node (i mod D) so the coordinator's splits — and
    // with --borrow, the cross-server loans — have skew to chase.
    std::vector<std::int64_t> tenant_sums(tenant_count, 0);
    for (std::size_t i = 0; i < reservations.size(); ++i) {
      harness::ClusterClientSpec spec;
      spec.tenant = i % tenant_count;
      spec.reservation = std::min<std::int64_t>(
          reservations[i],
          local * static_cast<std::int64_t>(cluster_nodes));
      spec.pattern = request_pattern;
      const auto demand = static_cast<std::int64_t>(
          static_cast<double>(spec.reservation +
                              pool / static_cast<std::int64_t>(clients)) *
          demand_factor);
      spec.demand_per_node.assign(cluster_nodes, 0);
      const std::size_t home = i % cluster_nodes;
      if (cluster_nodes == 1) {
        spec.demand_per_node[0] = demand;
      } else {
        spec.demand_per_node[home] = demand * 85 / 100;
        const std::int64_t rest =
            (demand - demand * 85 / 100) /
            static_cast<std::int64_t>(cluster_nodes - 1);
        for (std::size_t d = 0; d < cluster_nodes; ++d) {
          if (d != home) spec.demand_per_node[d] = rest;
        }
      }
      cc.clients.push_back(std::move(spec));
    }

    // Reservations were drawn against the cluster-wide aggregate, but
    // placement is per node: each shard admits at most its 1/D capacity
    // share, and a client consumes a node's split only up to its demand
    // there. Scale the whole distribution down (shape preserved) until
    // the demand-weighted reserved load on the hottest node fits inside
    // its share, leaving headroom for pool traffic.
    {
      const double node_cap =
          static_cast<double>(cap) / static_cast<double>(cluster_nodes);
      std::vector<double> node_load(cluster_nodes, 0.0);
      for (const auto& spec : cc.clients) {
        std::int64_t total_demand = 0;
        for (const std::int64_t d : spec.demand_per_node) {
          total_demand += d;
        }
        if (total_demand == 0) continue;
        for (std::size_t d = 0; d < cluster_nodes; ++d) {
          node_load[d] += static_cast<double>(spec.reservation) *
                          static_cast<double>(spec.demand_per_node[d]) /
                          static_cast<double>(total_demand);
        }
      }
      const double hottest =
          *std::max_element(node_load.begin(), node_load.end());
      const double overload = hottest / (0.85 * node_cap);
      if (overload > 1.0) {
        for (auto& spec : cc.clients) {
          spec.reservation = static_cast<std::int64_t>(
              static_cast<double>(spec.reservation) / overload);
        }
      }
    }
    for (const auto& spec : cc.clients) {
      tenant_sums[spec.tenant] += spec.reservation;
    }
    for (const std::int64_t sum : tenant_sums) {
      cc.tenants.push_back({sum, 0});
    }

    harness::ClusterExperiment experiment(std::move(cc));
    harness::ClusterExperimentResult result = experiment.Run();
    const auto& run_cfg = experiment.config();

    std::printf("mode=haechi cluster=%zu tenants=%zu borrow=%s clients=%zu "
                "capacity=%.0f KIOPS/node (1/%zu share of the %.0f-KIOPS "
                "aggregate, full-scale equivalent)\n\n",
                cluster_nodes, tenant_count, borrow.c_str(), clients,
                static_cast<double>(cap) /
                    static_cast<double>(cluster_nodes) / 1e3 / scale,
                cluster_nodes, static_cast<double>(cap) / 1e3 / scale);
    stats::Table table({"client", "tenant", "reservation", "mean/period",
                        "min/period", "SLO"});
    int met = 0;
    for (std::uint32_t c = 0; c < run_cfg.clients.size(); ++c) {
      const auto id = MakeClientId(c);
      std::int64_t total = 0;
      std::int64_t min = std::numeric_limits<std::int64_t>::max();
      for (std::size_t p = 0; p < periods; ++p) {
        std::int64_t served = 0;
        for (std::size_t d = 0; d < cluster_nodes; ++d) {
          served += result.node_series[d].At(p, id);
        }
        total += served;
        min = std::min(min, served);
      }
      const std::int64_t r = run_cfg.clients[c].reservation;
      const bool ok = min >= r * 98 / 100;
      met += ok;
      auto norm = [&](double v) { return stats::Table::Num(v / 1e3 / scale); };
      table.AddRow({"C" + std::to_string(c + 1),
                    "T" + std::to_string(run_cfg.clients[c].tenant),
                    norm(static_cast<double>(r)),
                    norm(static_cast<double>(total) /
                         static_cast<double>(periods)),
                    norm(static_cast<double>(min)), ok ? "met" : "MISSED"});
    }
    table.Print();
    std::printf("\ntotal %.0f KIOPS; reservations met %d/%zu\n",
                result.total_kiops / scale, met, run_cfg.clients.size());
    std::printf("coordinator: %llu rebalances moved %llu tokens (%llu "
                "rejected); borrow %s: granted %lld, repaid %lld, "
                "outstanding %lld (%llu stale reports)\n",
                static_cast<unsigned long long>(
                    result.cluster_stats.rebalances),
                static_cast<unsigned long long>(
                    result.cluster_stats.tokens_moved),
                static_cast<unsigned long long>(
                    result.cluster_stats.rejected_moves),
                borrow.c_str(),
                static_cast<long long>(result.borrow_granted),
                static_cast<long long>(result.borrow_repaid),
                static_cast<long long>(result.borrow_outstanding),
                static_cast<unsigned long long>(
                    result.cluster_stats.stale_reports));
    if (!trace_path_flag.empty()) {
      std::printf(
          "trace written to %s (audit with: haechi_audit --trace=%s)\n",
          trace_path_flag.c_str(), trace_path_flag.c_str());
    }
#if HAECHI_WATCHDOG_ENABLED
    if (obs::SloWatchdog* watchdog = experiment.watchdog()) {
      std::fprintf(
          stderr,
          "watchdog: %zu alert(s) over %zu period(s), %zu critical%s%s\n",
          watchdog->alerts().size(), watchdog->periods_evaluated(),
          watchdog->CountAtLeast(obs::AlertSeverity::kCritical),
          alerts_out.empty() ? "" : ", written to ", alerts_out.c_str());
    }
    PrintControllerSummary(experiment.controller());
#endif
    return 0;
  }

  const std::string runtime = flags.GetString("runtime", "sim");
  const std::int64_t shards = flags.GetInt("shards", 1);
  const std::int64_t fetch_batch = flags.GetInt("fetch-batch", 1);
  const std::int64_t workers = flags.GetInt("workers", 0);
  if (runtime != "threads" &&
      (shards != 1 || fetch_batch != 1 || workers != 0)) {
    std::fprintf(stderr,
                 "--shards/--fetch-batch/--workers require "
                 "--runtime=threads\n");
    return 2;
  }
  if (runtime == "threads") {
    if (shards < 1 || fetch_batch < 1 || workers < 0) {
      std::fprintf(stderr,
                   "--shards and --fetch-batch must be >= 1, --workers >= 0\n");
      return 2;
    }
    config.qos.pool_shards = shards;
    config.qos.fetch_batch = fetch_batch;
    config.runtime_workers = static_cast<std::size_t>(workers);
    if (config.mode == harness::Mode::kBare) {
      std::fprintf(stderr,
                   "--runtime=threads supports --mode=haechi|basic only\n");
      return 2;
    }
    if (config.background_demand > 0) {
      std::fprintf(stderr,
                   "--runtime=threads does not support --background-pct\n");
      return 2;
    }
#if HAECHI_WATCHDOG_ENABLED
    // The live watchdog (and the controller riding it) runs on threads too:
    // the recorder tap is serialised through a mutex. The status line stays
    // a post-run trace replay so sharded runs can show per-shard pool
    // occupancy; force a recorder so there is a trace to replay, and keep
    // the live tap free of the status callback.
    if (status_interval > 0) config.trace.enabled = true;
    config.watchdog.status_interval = 0;
#else
    if (!alerts_out.empty() || status_interval > 0) {
      std::fprintf(stderr,
                   "warning: built with HAECHI_WATCHDOG=OFF; "
                   "--alerts-out/--status-interval are ignored\n");
    }
    config.watchdog = {};
#endif
    // The threaded fabric has no analytic model: feed it the sim model's
    // calibrated capacities so both runtimes run the same token budget.
    config.profiled_global_iops = config.net.GlobalCapacityIops();
    config.profiled_local_iops = config.net.LocalCapacityIops();
    harness::ThreadedExperiment experiment(std::move(config));
    harness::ThreadedExperimentResult result = experiment.Run();

#if HAECHI_WATCHDOG_ENABLED
    if (status_interval > 0 && experiment.recorder() != nullptr) {
      obs::SloWatchdog watchdog;
      watchdog.SetStatusFn(
          [](const obs::PeriodStatus& status) {
            std::fprintf(stderr, "%s\n",
                         obs::FormatStatusLine(status).c_str());
          },
          status_interval);
      for (const obs::TraceEvent& event : experiment.recorder()->Merged()) {
        watchdog.OnEvent(event);
      }
      (void)watchdog.Finish();
    }
    if (obs::SloWatchdog* watchdog = experiment.watchdog()) {
      std::fprintf(
          stderr,
          "watchdog: %zu alert(s) over %zu period(s), %zu critical%s%s\n",
          watchdog->alerts().size(), watchdog->periods_evaluated(),
          watchdog->CountAtLeast(obs::AlertSeverity::kCritical),
          alerts_out.empty() ? "" : ", written to ", alerts_out.c_str());
    }
    PrintControllerSummary(experiment.controller());
#endif

    std::printf("mode=%s runtime=threads shards=%lld fetch-batch=%lld "
                "workers=%lld distribution=%s clients=%zu "
                "capacity=%.0f KIOPS (full-scale equivalent)\n\n",
                mode.c_str(), static_cast<long long>(shards),
                static_cast<long long>(fetch_batch),
                static_cast<long long>(workers), distribution.c_str(),
                clients, static_cast<double>(cap) / 1e3 / scale);
    const int met =
        PrintClientTable(result.series, result.reservations, periods, scale);
    std::printf("\ntotal %.0f KIOPS; reservations met %d/%zu; "
                "wall %.2fs\n",
                result.total_kiops / scale, met, result.reservations.size(),
                ToSeconds(result.wall_time));
    if (!csv_path_flag.empty()) {
      const Status s =
          stats::SeriesToCsv(result.series).WriteFile(csv_path_flag);
      if (!s.ok()) {
        std::fprintf(stderr, "csv export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::printf("per-period series written to %s\n", csv_path_flag.c_str());
    }
    if (!trace_path_flag.empty()) {
      std::printf(
          "trace written to %s (audit with: haechi_audit --trace=%s)\n",
          trace_path_flag.c_str(), trace_path_flag.c_str());
    }
    return 0;
  }
  if (runtime != "sim") {
    std::fprintf(stderr, "unknown --runtime=%s\n%s", runtime.c_str(), kUsage);
    return 2;
  }

  harness::Experiment experiment(std::move(config));
  const std::int64_t progress_events = flags.GetInt("progress-events", 0);
  if (progress_events > 0) {
    experiment.simulator().SetProgressHook(
        static_cast<std::uint64_t>(progress_events),
        [](SimTime now, std::uint64_t events) {
          std::fprintf(stderr, "t=%.3fs events=%llu\n", ToSeconds(now),
                       static_cast<unsigned long long>(events));
        });
  }
  harness::ExperimentResult result = experiment.Run();

  std::printf("mode=%s distribution=%s pattern=%s clients=%zu "
              "capacity=%.0f KIOPS (full-scale equivalent)\n\n",
              mode.c_str(), distribution.c_str(), pattern.c_str(), clients,
              static_cast<double>(cap) / 1e3 / scale);
  const int met =
      PrintClientTable(result.series, result.reservations, periods, scale);
  std::printf("\ntotal %.0f KIOPS; reservations met %d/%zu; events %llu\n",
              result.total_kiops / scale, met, reservations.size(),
              static_cast<unsigned long long>(result.events_run));

  const std::string csv_path = csv_path_flag;
  if (!csv_path.empty()) {
    const Status s = stats::SeriesToCsv(result.series).WriteFile(csv_path);
    if (!s.ok()) {
      std::fprintf(stderr, "csv export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("per-period series written to %s\n", csv_path.c_str());
  }
  const std::string trace_path = flags.GetString("trace-out", "");
  if (!trace_path.empty()) {
    // The audit consumes the CSV form; .json is for ui.perfetto.dev.
    if (trace_path.size() > 5 &&
        trace_path.compare(trace_path.size() - 5, 5, ".json") == 0) {
      std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::printf(
          "trace written to %s (audit with: haechi_audit --trace=%s)\n",
          trace_path.c_str(), trace_path.c_str());
    }
  }
#if HAECHI_WATCHDOG_ENABLED
  // Watchdog summary goes to stderr: stdout stays byte-identical with and
  // without the watchdog, so plot scripts never see it.
  if (obs::SloWatchdog* watchdog = experiment.watchdog()) {
    std::fprintf(stderr,
                 "watchdog: %zu alert(s) over %zu period(s), %zu critical%s%s\n",
                 watchdog->alerts().size(), watchdog->periods_evaluated(),
                 watchdog->CountAtLeast(obs::AlertSeverity::kCritical),
                 alerts_out.empty() ? "" : ", written to ",
                 alerts_out.c_str());
  }
  PrintControllerSummary(experiment.controller());
#endif
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
