// haechi_audit — trace-replay verifier.
//
// Reads a CSV trace exported by the flight recorder (harness
// ExperimentConfig::trace.out_path or `haechi_sim --trace-out=...`) and
// re-derives the PeriodLedger conservation identities and the
// reservation-guarantee invariant purely from the events (DESIGN.md §9.3).
// Cluster traces (haechi_sim --cluster) additionally replay the split,
// borrow and node-commitment identities C1..C3 (DESIGN.md §12).
// Exit code 0 = every identity holds, 2 = usage or unreadable/corrupt
// trace, 10+k = identity Ak is the lowest-numbered one violated (e.g. 13
// for a pool-monotonicity break, 19 for a missed reservation guarantee),
// 20+k = cluster identity Ck is (e.g. 22 for a borrow-ledger mismatch);
// 1 = violations whose check tag could not be parsed (never expected).
//
// Examples:
//   haechi_sim --trace-out=/tmp/run.csv && haechi_audit --trace=/tmp/run.csv
//   haechi_audit --trace=/tmp/chaos.csv --guarantee-fraction=0.9
#include <cstdio>

#include "common/flags.hpp"
#include "obs/audit.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

using namespace haechi;

namespace {

constexpr const char* kUsage = R"(haechi_audit - verify a QoS event trace

flags:
  --trace=PATH               CSV trace to audit (required; also accepted as
                             the sole positional argument)
  --guarantee-fraction=F     completed >= F * min(R, demand) per measured
                             period [0.95]
  --allow-truncated          accept traces whose rings wrapped (skips
                             count-based checks on truncated actors)
  --spans                    instead of auditing, assemble per-I/O spans
                             from a detail trace (--trace-detail) and print
                             the per-client/per-stage percentile table;
                             byte-identical across same-seed runs
  --quiet                    print only the verdict line

exit codes: 0 = PASS, 2 = usage/corrupt trace, 10+k = check Ak failed,
            20+k = cluster check Ck failed
)";

int Run(int argc, const char* const* argv) {
  auto parsed = Flags::Parse(
      argc, argv,
      {"trace", "guarantee-fraction", "allow-truncated", "spans", "quiet",
       "help"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = parsed.value();
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  std::string path = flags.GetString("trace", "");
  if (path.empty() && flags.positional().size() == 1) {
    path = flags.positional().front();
  }
  if (path.empty()) {
    std::fprintf(stderr, "missing --trace=PATH\n%s", kUsage);
    return 2;
  }

  const auto text = obs::ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 2;
  }
  const auto events = obs::ParseCsvTrace(text.value());
  if (!events.ok()) {
    std::fprintf(stderr, "corrupt trace: %s\n",
                 events.status().ToString().c_str());
    return 2;
  }

  if (flags.GetBool("spans", false)) {
#if HAECHI_TRACE_ENABLED
    obs::SpanAssemblyStats stats;
    const std::vector<obs::IoSpan> spans =
        obs::AssembleSpans(events.value(), &stats);
    obs::SpanProfile profile;
    profile.AddAll(spans);
    if (!flags.GetBool("quiet", false)) {
      std::printf("%s", profile.Table().c_str());
    }
    std::printf(
        "spans %llu assembled, %llu never issued, %llu never completed, "
        "%llu orphan events\n",
        static_cast<unsigned long long>(stats.spans),
        static_cast<unsigned long long>(stats.dropped_unissued),
        static_cast<unsigned long long>(stats.dropped_uncompleted),
        static_cast<unsigned long long>(stats.orphan_events));
    if (stats.spans == 0) {
      std::fprintf(stderr,
                   "no spans assembled: the trace has no per-I/O detail "
                   "events (rerun with --trace-detail)\n");
      return 2;
    }
    return 0;
#else
    std::fprintf(stderr,
                 "this binary was built with HAECHI_TRACE=OFF; span "
                 "assembly is compiled out\n");
    return 2;
#endif
  }

  obs::AuditOptions options;
  options.guarantee_fraction =
      flags.GetDouble("guarantee-fraction", options.guarantee_fraction);
  options.allow_truncated = flags.GetBool("allow-truncated", false);
  const obs::AuditReport report = obs::AuditTrace(events.value(), options);

  if (flags.GetBool("quiet", false)) {
    std::printf("%s: %zu events, %d checks, %zu violations\n",
                report.ok() ? "PASS" : "FAIL", events.value().size(),
                report.checks_run, report.violations.size());
  } else {
    std::printf("%s", report.Summary().c_str());
  }
  if (report.ok()) return 0;
  const int k = obs::FirstFailedCheck(report);
  return k > 0 ? 10 + k : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
