// bench_regress — deterministic figure-suite regression gate.
//
// Re-runs scaled-down versions of the paper's headline QoS figures (fig09
// sufficient demand, fig10 insufficient demand, fig16 congestion step)
// in-process, writes the per-figure throughput numbers to BENCH_qos.json at
// the repo root, and compares them against the previously-committed JSON
// within a tolerance band. The simulator is deterministic, so at fixed
// scale/seed/periods the numbers are machine-independent: any drift outside
// the band is a real behaviour change, not noise.
//
// Also gates the concurrent threaded runtime (--runtime=threads): one
// token-governed ThreadedExperiment is compared against BENCH_runtime.json
// within a wider band (--runtime-tolerance), since that backend is
// wall-clock scheduled and agrees statistically, not bitwise.
//
// Also gates the cluster subsystem: the ext_cluster_borrow scenario
// (stranded reservations under skewed per-node demand) runs with borrowing
// off and adaptive, compares both against BENCH_cluster.json, and fails
// outright if the adaptive policy does not *strictly* improve aggregate
// reserved attainment over borrowing off — the shape the bench exists to
// demonstrate, pinned as a gate.
//
// Optionally refreshes BENCH_overhead.json by spawning the bench_overhead
// binary (--overhead-bin=PATH); that file's tracing-delta percentages are
// wall-clock based and *not* compared, only regenerated — except the span
// pipeline's B=1 slowdown (span_delta_percent), which is checked against
// the generous compiled-in bound span_delta_gate_percent.
//
// Exit codes: 0 = within tolerance (or no baseline yet), 1 = regression,
// 2 = usage/IO error.
//
// Examples:
//   build/tools/bench_regress                       # compare + rewrite
//   build/tools/bench_regress --tolerance=0.02
//   build/tools/bench_regress --selftest            # gate logic check
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "cluster/borrow.hpp"
#include "common/flags.hpp"
#include "core/control/controller.hpp"
#include "harness/cluster_experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"

using namespace haechi;

namespace {

constexpr const char* kUsage = R"(bench_regress - QoS figure regression gate

flags (all optional):
  --out=PATH           JSON to (re)write            [BENCH_qos.json]
  --baseline=PATH      JSON to compare against      [same as --out]
  --tolerance=F        allowed relative drift       [0.05]
  --scale=F            capacity scale               [0.02]
  --periods=N          measured periods per figure  [figure default]
  --seed=N             RNG seed                     [42]
  --runtime-out=PATH   threads-mode gate JSON; empty skips the threaded
                       run entirely                 [BENCH_runtime.json]
  --runtime-tolerance=F allowed threads-mode drift  [0.25]
  --cluster-out=PATH   cluster borrow gate JSON; empty skips the cluster
                       runs entirely                [BENCH_cluster.json]
  --cluster-tolerance=F allowed cluster drift       [0.05]
  --overhead-bin=PATH  also run the bench_overhead sweep to refresh
                       BENCH_overhead.json (skips its microbenchmarks) and
                       gate span_delta_percent against the committed
                       span_delta_gate_percent
  --selftest           verify the gate itself: current numbers must pass
                       against themselves and fail against a doctored
                       baseline; runs no file writes

exit codes: 0 = within tolerance, 1 = regression, 2 = usage/IO error
)";

struct FigureResult {
  std::string name;
  double total_kiops = 0.0;   // compared against the baseline
  double detail = 0.0;        // informational (gain %, drop %, ...)
  std::string detail_name;
};

bench::BenchArgs GateArgs(double scale, std::uint64_t seed,
                          std::size_t periods) {
  bench::BenchArgs args;
  args.scale = scale;
  args.seed = seed;
  args.periods = periods;  // 0 = per-figure default
  args.warmup = Seconds(1);
  args.records = 4096;
  return args;
}

harness::ExperimentResult RunFigure(harness::ExperimentConfig config) {
  return harness::Experiment(std::move(config)).Run();
}

/// fig09: sufficient demand, zipf reservations, full Haechi.
FigureResult RunFig09(const bench::BenchArgs& args) {
  harness::ExperimentConfig config = bench::BaseConfig(args, 6);
  config.mode = harness::Mode::kHaechi;
  const std::int64_t cap = bench::CapacityTokens(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = bench::PaperZipf(reserved);
  bench::AddClients(config, reservations,
                    [pool](std::size_t, std::int64_t r) { return r + pool; },
                    workload::RequestPattern::kOpenLoop);
  const harness::ExperimentResult r = RunFigure(std::move(config));
  // Worst per-client reservation attainment — the figure's "meets" column.
  double min_attain = 1e9;
  for (std::uint32_t c = 0; c < 10; ++c) {
    const double attain =
        static_cast<double>(r.series.ClientMinPerPeriod(MakeClientId(c))) /
        static_cast<double>(reservations[c]);
    min_attain = std::min(min_attain, attain);
  }
  return {"fig09_zipf_haechi", bench::NormKiops(r.total_kiops, args),
          min_attain * 100.0, "min_attainment_pct"};
}

/// fig10: C1/C2 under-demand; conversion gain over Basic Haechi.
FigureResult RunFig10(const bench::BenchArgs& args) {
  double totals[2] = {0, 0};
  for (const harness::Mode mode :
       {harness::Mode::kHaechi, harness::Mode::kBasicHaechi}) {
    harness::ExperimentConfig config = bench::BaseConfig(args, 6);
    config.mode = mode;
    const std::int64_t cap = bench::CapacityTokens(config);
    const std::int64_t reserved = cap * 9 / 10;
    const std::int64_t pool = cap - reserved;
    bench::AddClients(config, bench::PaperZipf(reserved),
                      [pool](std::size_t i, std::int64_t r) {
                        return i < 2 ? r / 2 : r + pool;
                      },
                      workload::RequestPattern::kOpenLoop);
    totals[mode == harness::Mode::kHaechi ? 0 : 1] =
        bench::NormKiops(RunFigure(std::move(config)).total_kiops, args);
  }
  return {"fig10_zipf_haechi", totals[0],
          (totals[0] / totals[1] - 1.0) * 100.0, "conversion_gain_pct"};
}

/// fig16: background congestion starts mid-run; Algorithm 1 adapts.
FigureResult RunFig16(const bench::BenchArgs& args) {
  harness::ExperimentConfig config = bench::BaseConfig(args, 10);
  config.mode = harness::Mode::kHaechi;
  const std::int64_t cap = bench::CapacityTokens(config);
  const std::int64_t reserved = cap * 8 / 10;
  const std::int64_t pool = cap - reserved;
  bench::AddClients(config, workload::UniformShare(reserved, 10),
                    [pool](std::size_t, std::int64_t r) { return r + pool; },
                    workload::RequestPattern::kOpenLoop);
  const std::size_t step_period = config.measure_periods / 2;
  config.background_demand = cap * 15 / 100 / 10;
  config.background_on =
      config.warmup +
      static_cast<SimTime>(step_period) * config.qos.period;
  const std::size_t periods = config.measure_periods;
  const harness::ExperimentResult r = RunFigure(std::move(config));
  std::vector<std::int64_t> period_totals;
  for (std::size_t p = 0; p < periods; ++p) {
    period_totals.push_back(r.series.PeriodTotal(p));
  }
  const double before = bench::MeanOver(period_totals, 1, step_period);
  const double after =
      bench::MeanOver(period_totals, step_period + 2, period_totals.size());
  return {"fig16_uniform_congestion", bench::NormKiops(r.total_kiops, args),
          (1.0 - after / std::max(before, 1.0)) * 100.0, "step_drop_pct"};
}

/// Threads-mode gate figure: the concurrent runtime executes a fixed
/// 4-tenant Haechi workload against explicit profiled capacities, so its
/// throughput is token-governed (40000 global tokens per 100 ms period
/// against a 19000-token aggregate demand), not machine-governed. The
/// sharded-pool + batched-fetch + worker-pool configuration must sustain
/// the demand cap; the wide --runtime-tolerance band absorbs wall-clock
/// scheduling noise, while a token leak, a starved tenant, or a
/// contention collapse lands far outside it.
FigureResult RunRuntimeThreads(std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.qos.period = Millis(100);
  config.qos.token_tick = Millis(2);
  config.qos.report_interval = Millis(2);
  config.qos.check_interval = Millis(2);
  config.qos.token_batch = 50;
  config.qos.fetch_batch = 8;
  config.qos.pool_shards = 4;
  config.qos.pool_retry_interval = Millis(2);
  config.qos.faa_end_guard = Millis(20);
  config.profiled_global_iops = 400000;
  config.profiled_local_iops = 120000;
  config.records = 4096;
  config.warmup = Millis(100);
  config.measure_periods = 4;
  config.seed = seed;
  config.runtime_workers = 4;
  const std::int64_t reservations[] = {6000, 5000, 3000, 2000};
  const std::int64_t demands[] = {7000, 6000, 3500, 2500};
  for (std::size_t i = 0; i < 4; ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demands[i];
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  harness::ThreadedExperiment experiment(std::move(config));
  const harness::ThreadedExperimentResult result = experiment.Run();
  return {"runtime_threads_haechi", result.total_kiops,
          ToSeconds(result.wall_time), "wall_seconds"};
}

/// Cluster gate figure: the ext_cluster_borrow scenario scaled down. Two
/// data nodes; four strictly-provisioned residents (limit == reservation)
/// squeeze the hot node's admission first, then two managed clients send
/// nearly all of their above-reservation demand there — part of each
/// managed reservation strands on the idle node, reachable only through
/// borrowing. total_kiops is the managed clients' aggregate
/// *reserved-attained* throughput (served credited only up to the
/// reservation), the quantity borrowing exists to recover.
FigureResult RunClusterBorrow(const bench::BenchArgs& args,
                              cluster::BorrowPolicy policy) {
  harness::ClusterExperimentConfig config;
  config.net.capacity_scale = args.scale;
  config.data_nodes = 2;
  config.warmup = args.warmup;
  config.measure_periods = args.periods > 0 ? args.periods : 6;
  config.qos.token_batch = std::max<std::int64_t>(
      10, static_cast<std::int64_t>(1000 * args.scale));
  config.seed = args.seed;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());

  constexpr std::size_t kResidents = 4;
  constexpr std::size_t kManaged = 2;
  const std::int64_t reservation = cap / 8;
  // Residents first: the rebalancer visits clients in admission order, so
  // their node-0 shares claim the admission headroom before the managed
  // increases are considered.
  for (std::size_t i = 0; i < kResidents; ++i) {
    harness::ClusterClientSpec resident;
    resident.tenant = 1;
    resident.reservation = cap / 10;
    resident.limit = resident.reservation;
    resident.demand_per_node = {cap, 0};
    config.clients.push_back(resident);
  }
  for (std::size_t i = 0; i < kManaged; ++i) {
    harness::ClusterClientSpec managed;
    managed.tenant = 0;
    managed.reservation = reservation;
    const auto demand = reservation * 16 / 10;
    managed.demand_per_node = {demand * 95 / 100, demand * 5 / 100};
    config.clients.push_back(managed);
  }
  std::int64_t managed_total = 0, resident_total = 0;
  for (const auto& client : config.clients) {
    (client.tenant == 0 ? managed_total : resident_total) +=
        client.reservation;
  }
  config.tenants = {{managed_total, 0}, {resident_total, 0}};

  config.cluster.borrow.policy = policy;
  config.cluster.dry_watermark = config.qos.token_batch * 5;
  config.cluster.lender_floor = config.qos.token_batch * 10;
  config.cluster.borrow.quota = std::max<std::int64_t>(cap / 20, 1);
  config.cluster.borrow.min_quota = config.qos.token_batch;
  config.cluster.borrow.max_quota = std::max<std::int64_t>(cap / 4, 1);

  const auto periods = config.measure_periods;
  harness::ClusterExperiment experiment(std::move(config));
  const harness::ClusterExperimentResult r = experiment.Run();

  std::int64_t attained = 0;
  for (std::size_t p = 2; p < periods; ++p) {
    for (std::size_t i = 0; i < kManaged; ++i) {
      const auto id =
          MakeClientId(static_cast<std::uint32_t>(kResidents + i));
      const std::int64_t served =
          r.node_series[0].At(p, id) + r.node_series[1].At(p, id);
      attained += std::min(served, reservation);
    }
  }
  const double kiops = bench::NormKiops(
      ToKiops(attained, static_cast<SimDuration>(periods - 2) * kSecond),
      args);
  const std::string name =
      std::string("cluster_borrow_") +
      std::string(cluster::ToString(policy));
  return {name, kiops, static_cast<double>(r.borrow_granted),
          "borrowed_tokens"};
}

#if HAECHI_WATCHDOG_ENABLED
/// Closed-loop recovery figure: the controller suite's W1 shortfall chaos
/// (an over-reserved victim squeezed by background congestion) run once
/// per policy. total_kiops is the usual throughput band; the detail is
/// periods_to_recover — first W1 alert to the controller's `recovered`
/// verdict, 0 when the loop never closes (the off policy's signature).
FigureResult RunRecovery(const bench::BenchArgs& args,
                         core::control::Policy policy) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = args.scale;
  config.warmup = args.warmup;
  config.measure_periods = 10;
  config.records = args.records;
  config.seed = args.seed;
  config.trace.enabled = true;
  config.watchdog.enabled = true;
  config.watchdog.guarantee_fraction = 0.9;
  config.control.policy = policy;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  harness::ClientSpec victim;
  victim.reservation = cap * 24 / 100;
  victim.demand = cap / 2;
  victim.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(victim);
  for (int i = 0; i < 3; ++i) {
    harness::ClientSpec spec;
    spec.reservation = cap * 12 / 100;
    spec.demand = spec.reservation / 2;  // demand-capped receiver
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.background_demand = cap / 4 / 4;

  harness::Experiment experiment(std::move(config));
  const harness::ExperimentResult result = experiment.Run();
  double periods_to_recover = 0.0;
  for (const obs::Alert& alert : experiment.watchdog()->alerts()) {
    if (alert.kind == obs::AlertKind::kRecovered &&
        alert.expected == static_cast<std::int64_t>(
                              obs::AlertKind::kReservationShortfall)) {
      periods_to_recover = static_cast<double>(alert.observed);
      break;
    }
  }
  const std::string name =
      std::string("recovery_") + std::string(core::control::ToString(policy));
  return {name, bench::NormKiops(result.total_kiops, args),
          periods_to_recover, "periods_to_recover"};
}
#endif  // HAECHI_WATCHDOG_ENABLED

std::string ToJson(const std::vector<FigureResult>& figures, double scale,
                   double tolerance, std::uint64_t seed) {
  std::string out = "{\n  \"bench\": \"qos_regress\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"scale\": %g,\n  \"seed\": %llu,\n"
                "  \"tolerance\": %g,\n  \"figures\": [\n",
                scale, static_cast<unsigned long long>(seed), tolerance);
  out += buf;
  for (std::size_t i = 0; i < figures.size(); ++i) {
    const FigureResult& f = figures[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"total_kiops\": %.3f, "
                  "\"%s\": %.3f}%s\n",
                  f.name.c_str(), f.total_kiops, f.detail_name.c_str(),
                  f.detail, i + 1 < figures.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

/// Pulls `"total_kiops": N` for `"name": "X"` out of a baseline JSON. A
/// full parser would be overkill for a format this tool itself writes.
bool BaselineKiops(const std::string& json, const std::string& name,
                   double& out) {
  const std::string key = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return false;
  const std::string field = "\"total_kiops\": ";
  const std::size_t value = json.find(field, at);
  if (value == std::string::npos) return false;
  out = std::strtod(json.c_str() + value + field.size(), nullptr);
  return true;
}

/// Returns the number of figures drifting outside the band (0 = pass).
int Compare(const std::vector<FigureResult>& figures,
            const std::string& baseline, double tolerance) {
  int regressions = 0;
  for (const FigureResult& f : figures) {
    double expected = 0;
    if (!BaselineKiops(baseline, f.name, expected)) {
      std::printf("%-26s %10.1f KIOPS  (new figure, no baseline)\n",
                  f.name.c_str(), f.total_kiops);
      continue;
    }
    const double drift = expected != 0.0
                             ? (f.total_kiops - expected) / expected
                             : (f.total_kiops != 0.0 ? 1.0 : 0.0);
    const bool ok = std::fabs(drift) <= tolerance;
    std::printf("%-26s %10.1f KIOPS  baseline %10.1f  drift %+6.2f%%  %s\n",
                f.name.c_str(), f.total_kiops, expected, drift * 100.0,
                ok ? "ok" : "REGRESSION");
    regressions += !ok;
  }
  return regressions;
}

int SelfTest(const std::vector<FigureResult>& figures, double scale,
             double tolerance, std::uint64_t seed) {
  const std::string current = ToJson(figures, scale, tolerance, seed);
  if (Compare(figures, current, tolerance) != 0) {
    std::fprintf(stderr, "selftest: current numbers fail vs themselves\n");
    return 1;
  }
  // Doctor every figure down 3x tolerance: each one must trip the gate.
  std::vector<FigureResult> doctored = figures;
  for (FigureResult& f : doctored) f.total_kiops *= 1.0 - 3.0 * tolerance;
  const std::string bad = ToJson(doctored, scale, tolerance, seed);
  if (Compare(figures, bad, tolerance) !=
      static_cast<int>(figures.size())) {
    std::fprintf(stderr, "selftest: doctored baseline not detected\n");
    return 1;
  }
  std::printf("selftest: gate detects a %.0f%% regression; pass\n",
              3.0 * tolerance * 100.0);
  return 0;
}

int Run(int argc, const char* const* argv) {
  auto parsed = Flags::Parse(argc, argv,
                             {"out", "baseline", "tolerance", "scale",
                              "periods", "seed", "runtime-out",
                              "runtime-tolerance", "cluster-out",
                              "cluster-tolerance", "overhead-bin",
                              "selftest", "help"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = parsed.value();
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const std::string out_path = flags.GetString("out", "BENCH_qos.json");
  const std::string baseline_path = flags.GetString("baseline", out_path);
  const double tolerance = flags.GetDouble("tolerance", 0.05);
  const double scale = flags.GetDouble("scale", 0.02);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto periods =
      static_cast<std::size_t>(flags.GetInt("periods", 0));

  const bench::BenchArgs args = GateArgs(scale, seed, periods);
  std::vector<FigureResult> figures = {RunFig09(args), RunFig10(args),
                                       RunFig16(args)};
#if HAECHI_WATCHDOG_ENABLED
  // Recovery-time figures: one shortfall chaos run per controller policy.
  // The off run pins the open-loop baseline; the armed runs must close
  // the loop (shape gate below), and their periods_to_recover lands in
  // the JSON so the figure history tracks control-plane latency.
  const FigureResult recovery_off =
      RunRecovery(args, core::control::Policy::kOff);
  const FigureResult recovery_conservative =
      RunRecovery(args, core::control::Policy::kConservative);
  const FigureResult recovery_aggressive =
      RunRecovery(args, core::control::Policy::kAggressive);
  figures.push_back(recovery_off);
  figures.push_back(recovery_conservative);
  figures.push_back(recovery_aggressive);
#endif

  if (flags.GetBool("selftest", false)) {
    return SelfTest(figures, scale, tolerance, seed);
  }

  int regressions = 0;
  const auto baseline = obs::ReadFileToString(baseline_path);
  if (baseline.ok()) {
    regressions = Compare(figures, baseline.value(), tolerance);
  } else {
    std::printf("no baseline at %s; seeding it\n", baseline_path.c_str());
  }

#if HAECHI_WATCHDOG_ENABLED
  // Shape gate: an armed controller must recover the scripted shortfall;
  // the open loop must not (if it "recovers" the chaos stopped being
  // chaos and the figure lost its meaning).
  for (const FigureResult* f :
       {&recovery_conservative, &recovery_aggressive}) {
    if (f->detail > 0.0) {
      std::printf("%-26s %10.0f periods  ok (loop closed)\n",
                  f->name.c_str(), f->detail);
    } else {
      std::printf("%-26s %10s          REGRESSION (armed controller never "
                  "recovered)\n",
                  f->name.c_str(), "-");
      ++regressions;
    }
  }
  if (recovery_off.detail > 0.0) {
    std::printf("%-26s %10.0f periods  REGRESSION (open loop reported "
                "recovery)\n",
                recovery_off.name.c_str(), recovery_off.detail);
    ++regressions;
  }
#endif

  const std::string json = ToJson(figures, scale, tolerance, seed);
  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());

  // Threads-mode gate (--runtime=threads backend), in its own JSON with
  // its own (wider) tolerance since the runtime is wall-clock scheduled.
  const std::string runtime_out =
      flags.GetString("runtime-out", "BENCH_runtime.json");
  if (!runtime_out.empty()) {
    const double runtime_tolerance =
        flags.GetDouble("runtime-tolerance", 0.25);
    const std::vector<FigureResult> runtime_figures = {
        RunRuntimeThreads(seed)};
    const auto runtime_baseline = obs::ReadFileToString(runtime_out);
    if (runtime_baseline.ok()) {
      regressions += Compare(runtime_figures, runtime_baseline.value(),
                             runtime_tolerance);
    } else {
      std::printf("no baseline at %s; seeding it\n", runtime_out.c_str());
    }
    const std::string runtime_json =
        ToJson(runtime_figures, 1.0, runtime_tolerance, seed);
    std::FILE* runtime_file = std::fopen(runtime_out.c_str(), "wb");
    if (runtime_file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", runtime_out.c_str());
      return 2;
    }
    std::fwrite(runtime_json.data(), 1, runtime_json.size(), runtime_file);
    std::fclose(runtime_file);
    std::printf("wrote %s\n", runtime_out.c_str());
  }

  // Cluster borrow gate: drift bands for both policies, plus the strict
  // shape requirement that adaptive borrowing beats borrowing off.
  const std::string cluster_out =
      flags.GetString("cluster-out", "BENCH_cluster.json");
  if (!cluster_out.empty()) {
    const double cluster_tolerance =
        flags.GetDouble("cluster-tolerance", 0.05);
    const FigureResult off =
        RunClusterBorrow(args, cluster::BorrowPolicy::kOff);
    const FigureResult adaptive =
        RunClusterBorrow(args, cluster::BorrowPolicy::kAdaptive);
    const std::vector<FigureResult> cluster_figures = {off, adaptive};
    const auto cluster_baseline = obs::ReadFileToString(cluster_out);
    if (cluster_baseline.ok()) {
      regressions += Compare(cluster_figures, cluster_baseline.value(),
                             cluster_tolerance);
    } else {
      std::printf("no baseline at %s; seeding it\n", cluster_out.c_str());
    }
    if (adaptive.total_kiops > off.total_kiops) {
      std::printf("%-26s %10.1f > %.1f KIOPS  ok (adaptive strictly "
                  "improves attainment)\n",
                  "cluster_borrow_shape", adaptive.total_kiops,
                  off.total_kiops);
    } else {
      std::printf("%-26s %10.1f <= %.1f KIOPS  REGRESSION (adaptive must "
                  "strictly improve attainment)\n",
                  "cluster_borrow_shape", adaptive.total_kiops,
                  off.total_kiops);
      ++regressions;
    }
    const std::string cluster_json =
        ToJson(cluster_figures, scale, cluster_tolerance, seed);
    std::FILE* cluster_file = std::fopen(cluster_out.c_str(), "wb");
    if (cluster_file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cluster_out.c_str());
      return 2;
    }
    std::fwrite(cluster_json.data(), 1, cluster_json.size(), cluster_file);
    std::fclose(cluster_file);
    std::printf("wrote %s\n", cluster_out.c_str());
  }

  const std::string overhead_bin = flags.GetString("overhead-bin", "");
  if (!overhead_bin.empty()) {
    // Refresh the tracing-overhead sweep, skipping the microbenchmarks.
    // The tracing-delta percentages are wall-clock based and only
    // regenerated, but the span-pipeline delta is gate-checked below
    // against the bound the sweep itself writes (span_delta_gate_percent,
    // a compiled-in constant, so the committed bound survives refreshes).
    const std::string cmd =
        overhead_bin + " --benchmark_filter=DoesNotExistAnywhere";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "bench_overhead sweep failed: %s\n",
                   cmd.c_str());
      return 2;
    }
    const auto overhead_json = obs::ReadFileToString("BENCH_overhead.json");
    if (overhead_json.ok() &&
        overhead_json.value().find("\"trace_compiled\": true") !=
            std::string::npos) {
      const auto field = [&](const char* name, double& out) {
        const std::string key = std::string("\"") + name + "\": ";
        const std::size_t at = overhead_json.value().find(key);
        if (at == std::string::npos) return false;
        out = std::strtod(overhead_json.value().c_str() + at + key.size(),
                          nullptr);
        return true;
      };
      double span_delta = 0.0, span_gate = 0.0;
      if (field("span_delta_percent", span_delta) &&
          field("span_delta_gate_percent", span_gate)) {
        const bool ok = span_delta <= span_gate;
        std::printf("%-26s %9.2f%% slowdown  gate %.1f%%  %s\n",
                    "span_pipeline_overhead", span_delta, span_gate,
                    ok ? "ok" : "REGRESSION");
        regressions += !ok;
      }
    }
  }

  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
