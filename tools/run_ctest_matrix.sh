#!/usr/bin/env bash
# Configure, build and run the full test suite under every CMake preset
# (default, asan, tsan, trace, notrace — see CMakePresets.json). The trace
# preset pins the QoS flight recorder ON; notrace compiles it out, proving
# the zero-cost contract (bench_overhead's static_assert) and the
# trace-gated test skips. Usage:
#
#   tools/run_ctest_matrix.sh              # the whole matrix
#   tools/run_ctest_matrix.sh asan         # one preset
#   JOBS=8 tools/run_ctest_matrix.sh       # override parallelism
#
# Exits non-zero on the first failing preset.
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [[ ${#PRESETS[@]} -eq 0 ]]; then
  PRESETS=(default asan tsan trace notrace)
fi
JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] ctest ===="
  ctest --preset "$preset" -j "$JOBS"
done

echo "==== matrix passed: ${PRESETS[*]} ===="
