#!/usr/bin/env bash
# Configure, build and run the full test suite under every CMake preset
# (default, asan, tsan, trace, notrace — see CMakePresets.json). The trace
# preset pins the QoS flight recorder AND the online SLO watchdog ON;
# notrace compiles both out, proving the zero-cost contracts
# (bench_overhead's static_assert, the watchdog's compiled-out wiring) and
# the trace-gated test skips. Usage:
#
#   tools/run_ctest_matrix.sh              # the whole matrix
#   tools/run_ctest_matrix.sh asan         # one preset
#   tools/run_ctest_matrix.sh tsan-runtime # focused entry: the tsan preset
#                                          # restricted to the concurrent
#                                          # runtime tests (runtime_diff,
#                                          # runtime_stress,
#                                          # runtime_property) — the quick
#                                          # gate for src/runtime changes
#   tools/run_ctest_matrix.sh tsan-runtime-sharded
#                                          # tighter still: only the
#                                          # sharded-pool / batched-fetch /
#                                          # rebalance tests under tsan —
#                                          # the gate for pool-shard and
#                                          # fetch-batch changes
#   tools/run_ctest_matrix.sh asan-cluster tsan-cluster
#                                          # focused entries: the asan/tsan
#                                          # presets restricted to the
#                                          # cluster suites (cluster_test,
#                                          # cluster_property_test) — the
#                                          # quick gate for src/cluster
#                                          # changes
#   tools/run_ctest_matrix.sh asan-controller tsan-controller
#                                          # focused entries: the asan/tsan
#                                          # presets restricted to the
#                                          # closed-loop control suite
#                                          # (controller_test) — the quick
#                                          # gate for src/core/control
#                                          # changes
#   tools/run_ctest_matrix.sh trace-spans notrace
#                                          # the span-pipeline gate: the
#                                          # trace preset restricted to the
#                                          # span-labelled suites
#                                          # (trace_test, span_test), then
#                                          # the notrace preset proving the
#                                          # whole pipeline compiles out
#   JOBS=8 tools/run_ctest_matrix.sh       # override parallelism
#   BENCH=1 tools/run_ctest_matrix.sh      # also run the bench regression
#                                          # gates (tools/bench_regress:
#                                          # BENCH_qos.json sim figures +
#                                          # BENCH_runtime.json threads run +
#                                          # BENCH_cluster.json borrow gate +
#                                          # the BENCH_overhead.json span-
#                                          # pipeline slowdown gate)
#
# Exits non-zero on the first failing preset (or a bench regression).
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [[ ${#PRESETS[@]} -eq 0 ]]; then
  PRESETS=(default asan tsan trace notrace)
fi
JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  # tsan-runtime is a focused alias, not a CMake preset: build the tsan
  # preset but run only the concurrent-runtime tests.
  config_preset="$preset"
  ctest_args=()
  if [[ "$preset" == "tsan-runtime" ]]; then
    config_preset=tsan
    ctest_args=(-L runtime)
  elif [[ "$preset" == "tsan-runtime-sharded" ]]; then
    config_preset=tsan
    ctest_args=(-R 'Shard|Rebalance|BatchedFetch')
  elif [[ "$preset" == "asan-cluster" ]]; then
    config_preset=asan
    ctest_args=(-L cluster)
  elif [[ "$preset" == "tsan-cluster" ]]; then
    config_preset=tsan
    ctest_args=(-L cluster)
  elif [[ "$preset" == "asan-controller" ]]; then
    config_preset=asan
    ctest_args=(-L controller)
  elif [[ "$preset" == "tsan-controller" ]]; then
    config_preset=tsan
    ctest_args=(-L controller)
  elif [[ "$preset" == "trace-spans" ]]; then
    config_preset=trace
    ctest_args=(-L span)
  fi
  echo "==== [$preset] configure ===="
  cmake --preset "$config_preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$config_preset" -j "$JOBS"
  echo "==== [$preset] ctest ===="
  ctest --preset "$config_preset" -j "$JOBS" --no-tests=error \
    "${ctest_args[@]}"
done

# Opt-in bench regression gate: re-runs the deterministic figure suite and
# compares against the committed BENCH_qos.json within a tolerance band.
if [[ "${BENCH:-0}" == "1" ]]; then
  echo "==== bench regression gate ===="
  cmake --build --preset default -j "$JOBS" --target bench_regress \
    bench_overhead
  ./build/tools/bench_regress --overhead-bin=./build/bench/bench_overhead
fi

echo "==== matrix passed: ${PRESETS[*]} ===="
