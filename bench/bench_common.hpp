// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary accepts the same flags:
//   --scale=F            capacity scale (default 1.0 = the paper's hardware)
//   --periods=N          measured QoS periods (default figure-specific)
//   --warmup-seconds=N   warm-up before measurement (default 3; paper: 30)
//   --seed=N             RNG seed (default 42)
//   --records=N          KV records (default 16384; paper: 1M — timing-
//                        equivalent, see DESIGN.md)
// and prints the figure's rows followed by a paper-vs-measured note.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "harness/experiment.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

namespace haechi::bench {

struct BenchArgs {
  double scale = 1.0;
  std::size_t periods = 0;  // 0: keep the bench's default
  SimDuration warmup = Seconds(3);
  std::uint64_t seed = 42;
  std::uint64_t records = 16384;
};

/// Parses the standard flags; exits with a usage message on error.
inline BenchArgs ParseArgs(int argc, const char* const* argv) {
  auto flags = Flags::Parse(
      argc, argv, {"scale", "periods", "warmup-seconds", "seed", "records"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\nflags: --scale --periods --warmup-seconds "
                         "--seed --records\n",
                 flags.status().ToString().c_str());
    std::exit(2);
  }
  BenchArgs args;
  args.scale = flags.value().GetDouble("scale", 1.0);
  args.periods =
      static_cast<std::size_t>(flags.value().GetInt("periods", 0));
  args.warmup = Seconds(flags.value().GetInt("warmup-seconds", 3));
  args.seed = static_cast<std::uint64_t>(flags.value().GetInt("seed", 42));
  args.records =
      static_cast<std::uint64_t>(flags.value().GetInt("records", 16384));
  return args;
}

/// Baseline experiment config with the standard flags applied.
inline harness::ExperimentConfig BaseConfig(const BenchArgs& args,
                                            std::size_t default_periods) {
  harness::ExperimentConfig config;
  config.net.capacity_scale = args.scale;
  config.warmup = args.warmup;
  config.measure_periods =
      args.periods > 0 ? args.periods : default_periods;
  config.seed = args.seed;
  config.records = args.records;
  return config;
}

inline std::int64_t CapacityTokens(const harness::ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops() *
                                   ToSeconds(config.qos.period));
}

/// The paper's Zipf reservation distribution (10 clients, 5 groups, 0.6).
inline std::vector<std::int64_t> PaperZipf(std::int64_t total) {
  return workload::ZipfGroupShare(total, 10, 5, 0.6);
}

/// Appends one ClientSpec per reservation with per-client demands — the
/// loop every figure bench was hand-rolling.
inline void AddClients(harness::ExperimentConfig& config,
                       const std::vector<std::int64_t>& reservations,
                       const std::vector<std::int64_t>& demands,
                       workload::RequestPattern pattern) {
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demands[i];
    spec.pattern = pattern;
    config.clients.push_back(spec);
  }
}

/// Same, with demand as a function of (client index, reservation).
template <typename DemandFn>
void AddClients(harness::ExperimentConfig& config,
                const std::vector<std::int64_t>& reservations,
                DemandFn demand_of, workload::RequestPattern pattern) {
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demand_of(i, reservations[i]);
    spec.pattern = pattern;
    config.clients.push_back(spec);
  }
}

/// Mean per-period value over [from, to).
inline double MeanOver(const std::vector<std::int64_t>& v, std::size_t from,
                       std::size_t to) {
  double sum = 0;
  for (std::size_t i = from; i < to && i < v.size(); ++i) {
    sum += static_cast<double>(v[i]);
  }
  return to > from ? sum / static_cast<double>(to - from) : 0.0;
}

inline void PrintHeader(const char* figure, const char* paper_summary) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n\n", paper_summary);
}

/// KIOPS normalised to full scale, so numbers remain comparable with the
/// paper even when run with --scale < 1.
inline double NormKiops(double kiops, const BenchArgs& args) {
  return kiops / args.scale;
}

inline void PrintFooter(const BenchArgs& args) {
  if (args.scale != 1.0) {
    std::printf("\n(measured at scale %.3g; KIOPS columns are normalised "
                "to full scale)\n",
                args.scale);
  }
  std::printf("\n");
}

}  // namespace haechi::bench
