// Figure 18 (Set 4): Haechi throughput over time when background
// congestion that was present from the start disappears mid-run. Paper:
// throughput gradually increases as the Adaptive Capacity Estimation
// algorithm grows the estimate by eta each fully-consumed period.
#include "bench/set4_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 18 / Set 4: congestion stops mid-run (throughput)",
              "per-period throughput climbs gradually after the step "
              "(eta increments), not instantly");

  for (const bool zipf : {false, true}) {
    std::printf("--- %s reservation distribution ---\n",
                zipf ? "Zipf" : "Uniform");
    const Set4Result r = RunSet4(args, zipf, /*congestion_starts=*/false);
    PrintSeries(args, r, /*show_c1=*/false);
    const double before = MeanOver(r.period_totals, 1, r.step_period);
    const double after = MeanOver(r.period_totals, r.period_totals.size() - 5,
                                  r.period_totals.size());
    std::printf("mean total before %.0f KIOPS, last 5 periods %.0f KIOPS "
                "(recovered %.1f%%)\n\n",
                NormKiops(before / 1e3, args), NormKiops(after / 1e3, args),
                (after / before - 1.0) * 100.0);
  }
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
