// Extension bench (paper §V future work): multi-data-node Haechi with the
// cluster coordinator. Compares static equal splitting of a cluster-wide
// reservation against usage-driven rebalancing when per-node demand is
// skewed: static splitting strands reservation on cold nodes while the
// hot-node share is too small; rebalancing follows the demand and restores
// the cluster-wide guarantee.
#include "bench/bench_common.hpp"
#include "harness/cluster_experiment.hpp"

namespace haechi::bench {
namespace {

struct Outcome {
  double managed_kiops;       // managed client's cluster-wide throughput
  double slo_attainment_min;  // worst period vs reservation
  double pool_dependence;     // share of its I/Os backed by pool tokens
  std::vector<std::int64_t> final_split;
};

Outcome Run(const BenchArgs& args, bool rebalancing, double hot_fraction) {
  harness::ClusterExperimentConfig config;
  config.net.capacity_scale = args.scale == 1.0 ? 0.05 : args.scale;
  config.data_nodes = 2;
  config.warmup = Seconds(2);
  config.measure_periods = args.periods > 0 ? args.periods : 8;
  config.qos.token_batch = 100;
  config.seed = args.seed;
  if (!rebalancing) {
    // Degenerate coordinator: never moves tokens.
    config.cluster.ewma = 1e-9;
    config.cluster.min_share = 0.49;
  }
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  const auto local =
      static_cast<std::int64_t>(config.net.LocalCapacityIops());

  // The client under test: one cluster-wide reservation, demand skewed
  // toward node 0 by `hot_fraction`.
  harness::ClusterClientSpec managed;
  managed.reservation = cap / 5;
  managed.demand_per_node = {
      static_cast<std::int64_t>(static_cast<double>(cap / 5) * hot_fraction),
      static_cast<std::int64_t>(static_cast<double>(cap / 5) *
                                (1.0 - hot_fraction))};
  config.clients = {managed};

  // Six hungry clients pinned three-per-node (their own rebalancing pulls
  // their reservations to their home node within a period or two): they
  // keep both nodes' global pools scarce, so the managed client's
  // guarantee depends on where its *reservation* sits — the quantity under
  // test.
  for (int node = 0; node < 2; ++node) {
    for (int t = 0; t < 3; ++t) {
      harness::ClusterClientSpec pinned;
      pinned.reservation = local * 95 / 100;
      pinned.demand_per_node = {node == 0 ? cap : 0, node == 1 ? cap : 0};
      config.clients.push_back(pinned);
    }
  }
  std::int64_t tenant_total = 0;
  for (auto& client : config.clients) {
    client.tenant = 0;
    tenant_total += client.reservation;
  }
  config.tenants = {{tenant_total, 0}};

  const auto periods = config.measure_periods;
  harness::ClusterExperiment exp(std::move(config));
  harness::ClusterExperimentResult r = exp.Run();

  Outcome out;
  const auto id = MakeClientId(0);
  std::int64_t total = 0;
  double worst = 1e9;
  // Skip the first 2 periods (split convergence).
  for (std::size_t p = 2; p < periods; ++p) {
    const std::int64_t served =
        r.node_series[0].At(p, id) + r.node_series[1].At(p, id);
    total += served;
    worst = std::min(
        worst, static_cast<double>(served) / static_cast<double>(cap / 5));
  }
  out.managed_kiops =
      ToKiops(total, static_cast<SimDuration>(periods - 2) * kSecond);
  out.slo_attainment_min = worst;
  std::int64_t pool_tokens = 0, all_tokens = 0;
  for (const auto& st : r.engine_stats[0]) {
    pool_tokens += st.tokens_from_pool;
    all_tokens += st.tokens_from_pool + st.tokens_from_reservation;
  }
  out.pool_dependence =
      all_tokens > 0 ? static_cast<double>(pool_tokens) /
                           static_cast<double>(all_tokens)
                     : 0.0;
  out.final_split = r.final_split[0];
  return out;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Extension: multi-data-node reservation rebalancing (paper "
              "SV future work)",
              "static equal splits strand reservation on cold nodes; "
              "usage-driven rebalancing restores the cluster-wide "
              "guarantee");

  stats::Table table({"hot-node demand", "policy", "managed KIOPS",
                      "worst-period SLO", "pool-backed I/Os",
                      "final split (hot/cold)"});
  for (const double hot : {0.6, 0.8, 0.95}) {
    for (const bool rebalance : {false, true}) {
      const Outcome out = Run(args, rebalance, hot);
      table.AddRow(
          {stats::Table::Num(hot * 100, 0) + "%",
           rebalance ? "rebalancing" : "static split",
           stats::Table::Num(NormKiops(out.managed_kiops, args)),
           stats::Table::Num(out.slo_attainment_min * 100, 1) + "%",
           stats::Table::Num(out.pool_dependence * 100, 1) + "%",
           stats::Table::Int(out.final_split[0]) + "/" +
               stats::Table::Int(out.final_split[1])});
    }
  }
  table.Print();
  std::printf("\nshape check: single-node Haechi's token conversion keeps "
              "even the static split work-conserving (throughput holds), "
              "but the stranded reservation turns into best-effort pool "
              "traffic: the managed client's I/Os become pool-dependent "
              "(fragile under contention), while rebalancing keeps them "
              "reservation-backed.\n");
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
