// Figure 7 (Experiment 1B): data-node throughput versus number of active
// clients. Paper: one-sided scales linearly to 4 clients then saturates at
// ~1570 KIOPS; two-sided flattens at ~430 KIOPS with just 2 clients.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

double RunClients(const BenchArgs& args, harness::IoPath path,
                  std::size_t clients) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/2);
  config.mode = harness::Mode::kBare;
  config.io_path = path;
  config.warmup = Millis(300);
  const auto saturating =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops() * 2);
  config.clients = harness::UniformClients(
      clients, 0, saturating, workload::RequestPattern::kBurst);
  return harness::Experiment(std::move(config)).Run().total_kiops;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader(
      "Figure 7 / Experiment 1B: throughput vs number of active clients",
      "1-sided: linear to 4 clients, saturates ~1570 KIOPS; "
      "2-sided: saturates ~430 KIOPS at 2 clients");

  stats::Table table(
      {"clients", "1-sided KIOPS", "2-sided KIOPS"});
  double one4 = 0, one10 = 0, two2 = 0, two10 = 0, one1 = 0;
  for (std::size_t n = 1; n <= 10; ++n) {
    const double one =
        NormKiops(RunClients(args, harness::IoPath::kOneSided, n), args);
    const double two =
        NormKiops(RunClients(args, harness::IoPath::kTwoSided, n), args);
    if (n == 1) one1 = one;
    if (n == 2) two2 = two;
    if (n == 4) one4 = one;
    if (n == 10) {
      one10 = one;
      two10 = two;
    }
    table.AddRow({std::to_string(n), stats::Table::Num(one),
                  stats::Table::Num(two)});
  }
  table.Print();
  std::printf("\nshape check: 1-sided needs %d clients to saturate "
              "(paper: 4); saturated 1-sided/2-sided = %.2f (paper: "
              "1570/430 = 3.65)\n",
              one4 > one10 * 0.97 ? 4 : 5, one10 / two10);
  std::printf("2-sided saturated by 2 clients: %s (%.0f of %.0f KIOPS)\n",
              two2 > two10 * 0.95 ? "yes" : "no", two2, two10);
  std::printf("1-sided linearity: 4 clients / 1 client = %.2f (ideal 4.0, "
              "capped by saturation)\n",
              one4 / one1);
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
