// Figure 15 (Set 3): average, 99% and 99.9% read latency for the burst and
// constant-rate request patterns. Paper: burst latencies are far higher
// (deep client-side queueing); constant-rate has almost no queue build-up.
#include "bench/set3_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 15 / Set 3: read latency by request pattern",
              "burst >> constant-rate for average and tail latencies "
              "(queueing delay at the clients)");

  const Set3Result burst =
      RunSet3(args, workload::RequestPattern::kBurst, false);
  const Set3Result constant =
      RunSet3(args, workload::RequestPattern::kConstantRate, false);

  auto us = [](const stats::Histogram& h, double q) {
    return static_cast<double>(h.ValueAtQuantile(q)) / 1e3;
  };
  stats::Table table({"pattern", "avg us", "p99 us", "p99.9 us", "samples"});
  table.AddRow({"burst", stats::Table::Num(burst.latency.Mean() / 1e3),
                stats::Table::Num(us(burst.latency, 0.99)),
                stats::Table::Num(us(burst.latency, 0.999)),
                stats::Table::Int(
                    static_cast<std::int64_t>(burst.latency.Count()))});
  table.AddRow({"constant-rate",
                stats::Table::Num(constant.latency.Mean() / 1e3),
                stats::Table::Num(us(constant.latency, 0.99)),
                stats::Table::Num(us(constant.latency, 0.999)),
                stats::Table::Int(
                    static_cast<std::int64_t>(constant.latency.Count()))});
  table.Print();
  std::printf("\nshape check: burst/const-rate avg latency ratio = %.1fx "
              "(paper: large); note absolute values are model outputs "
              "(DESIGN.md §6)\n",
              burst.latency.Mean() / constant.latency.Mean());
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
