// Figure 19 (Set 4): per-period completions of the highest-reservation
// client (C1) after congestion disappears. Paper: Uniform — every client's
// I/Os (including C1's) grow with the recovering estimate; Zipf — C1 stays
// at its reservation while the extra recovered tokens flow to the
// low-reservation clients as they finish their reservations first.
#include "bench/set4_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 19 / Set 4: C1 during capacity recovery",
              "uniform: C1 grows with the estimate; zipf: C1 holds at its "
              "reservation (extra tokens go to low-reservation clients)");

  for (const bool zipf : {false, true}) {
    std::printf("--- %s reservation distribution ---\n",
                zipf ? "Zipf" : "Uniform");
    const Set4Result r = RunSet4(args, zipf, /*congestion_starts=*/false);
    PrintSeries(args, r, /*show_c1=*/true);
    const double res = static_cast<double>(r.c1_reservation);
    const double before =
        MeanOver(r.c1_per_period, 1, r.step_period) / res;
    const double after = MeanOver(r.c1_per_period,
                                  r.period_totals.size() - 5,
                                  r.period_totals.size()) /
                         res;
    std::printf("C1 attainment before %.1f%%, last 5 periods %.1f%% "
                "(uniform grows above 100%%; zipf stays near 100%%)\n\n",
                before * 100.0, after * 100.0);
  }
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
