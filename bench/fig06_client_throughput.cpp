// Figure 6 (Experiment 1A): saturation throughput of each client run one at
// a time, one-sided vs two-sided I/O. Paper: ~400 KIOPS one-sided,
// ~327 KIOPS two-sided (about 20% lower) for every client.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

double RunOneClient(const BenchArgs& args, harness::IoPath path,
                    std::uint64_t seed_offset) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/2);
  config.mode = harness::Mode::kBare;
  config.io_path = path;
  config.warmup = Millis(300);  // single client, fast ramp
  config.seed = args.seed + seed_offset;
  const auto saturating =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops() * 2);
  config.clients = harness::UniformClients(
      1, 0, saturating, workload::RequestPattern::kBurst);
  return harness::Experiment(std::move(config)).Run().total_kiops;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 6 / Experiment 1A: per-client saturation throughput",
              "every client ~400 KIOPS (1-sided), ~327 KIOPS (2-sided)");

  stats::Table table({"client", "1-sided KIOPS", "2-sided KIOPS",
                      "2-sided / 1-sided"});
  double one_total = 0, two_total = 0;
  for (std::uint64_t c = 1; c <= 10; ++c) {
    const double one =
        NormKiops(RunOneClient(args, harness::IoPath::kOneSided, c), args);
    const double two =
        NormKiops(RunOneClient(args, harness::IoPath::kTwoSided, 100 + c),
                  args);
    one_total += one;
    two_total += two;
    table.AddRow({"C" + std::to_string(c), stats::Table::Num(one),
                  stats::Table::Num(two), stats::Table::Num(two / one, 2)});
  }
  table.AddRow({"mean", stats::Table::Num(one_total / 10),
                stats::Table::Num(two_total / 10),
                stats::Table::Num(two_total / one_total, 2)});
  table.Print();
  std::printf("\nshape check: all clients uniform; 2-sided ~20%% below "
              "1-sided (paper: 327/400 = 0.82)\n");
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
