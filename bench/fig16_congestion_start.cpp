// Figure 16 (Set 4): Haechi throughput over time when background network
// congestion starts mid-run. Paper: throughput falls when the congestion
// begins and the monitor adapts the token allocation; shown for Uniform
// (a) and Zipf (b) reservation distributions.
#include "bench/set4_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 16 / Set 4: congestion starts mid-run (throughput)",
              "per-period throughput drops at the step; the capacity "
              "estimate follows it down");

  for (const bool zipf : {false, true}) {
    std::printf("--- %s reservation distribution ---\n",
                zipf ? "Zipf" : "Uniform");
    const Set4Result r = RunSet4(args, zipf, /*congestion_starts=*/true);
    PrintSeries(args, r, /*show_c1=*/false);
    const double before = MeanOver(r.period_totals, 1, r.step_period);
    const double after = MeanOver(r.period_totals, r.step_period + 3,
                                  r.period_totals.size());
    std::printf("mean total before %.0f KIOPS, after %.0f KIOPS "
                "(drop %.1f%%; background consumes ~15%%)\n\n",
                NormKiops(before / 1e3, args), NormKiops(after / 1e3, args),
                (1.0 - after / before) * 100.0);
  }
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
