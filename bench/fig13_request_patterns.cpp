// Figure 13 (Set 3): completed I/Os per client under the Spike reservation
// distribution, burst vs constant-rate request patterns. Paper: with burst
// requests the high-reservation clients C1-C3 miss their reservations
// (demand arrives completion-gated, violating Definition 1's backlog
// condition); with constant-rate requests they meet and surpass them.
#include "bench/set3_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 13 / Set 3: completed I/Os, burst vs constant-rate",
              "burst: C1-C3 miss their 285K reservations; constant-rate: "
              "they meet and surpass them");

  const Set3Result burst =
      RunSet3(args, workload::RequestPattern::kBurst, false);
  const Set3Result constant =
      RunSet3(args, workload::RequestPattern::kConstantRate, false);

  stats::Table table({"client", "reservation", "burst", "const-rate",
                      "burst meets", "const meets"});
  for (std::size_t c = 0; c < 10; ++c) {
    table.AddRow(
        {"C" + std::to_string(c + 1),
         stats::Table::Num(NormKiops(burst.reservation_kiops[c], args)),
         stats::Table::Num(NormKiops(burst.completed_kiops[c], args)),
         stats::Table::Num(NormKiops(constant.completed_kiops[c], args)),
         burst.completed_kiops[c] >= burst.reservation_kiops[c] * 0.99
             ? "yes"
             : "NO",
         constant.completed_kiops[c] >= constant.reservation_kiops[c] * 0.99
             ? "yes"
             : "NO"});
  }
  table.Print();
  std::printf("\nshape check: burst C1 at %.0f%% of reservation (paper: "
              "~97%%->miss); const-rate C1 at %.0f%% (paper: >100%%)\n",
              burst.completed_kiops[0] / burst.reservation_kiops[0] * 100.0,
              constant.completed_kiops[0] / constant.reservation_kiops[0] *
                  100.0);
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
