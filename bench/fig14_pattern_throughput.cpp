// Figure 14 (Set 3): data-node throughput for the burst and constant-rate
// request patterns under the Spike reservation distribution, against the
// bare system. Paper: throughput drops 12.9% with burst but only 0.7% with
// constant-rate (the latter keeps the node saturated all period).
#include "bench/set3_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 14 / Set 3: data-node throughput by request pattern",
              "throughput drop vs bare: burst ~12.9%, constant-rate ~0.7%");

  const Set3Result burst =
      RunSet3(args, workload::RequestPattern::kBurst, true);
  const Set3Result constant =
      RunSet3(args, workload::RequestPattern::kConstantRate, true);
  const Set3Result burst_basic =
      RunSet3(args, workload::RequestPattern::kBurst, false,
              harness::Mode::kBasicHaechi);

  stats::Table table(
      {"pattern", "haechi KIOPS", "bare KIOPS", "drop %"});
  auto drop = [](double qos, double bare) {
    return stats::Table::Num((1.0 - qos / bare) * 100.0, 1);
  };
  table.AddRow({"burst", stats::Table::Num(NormKiops(burst.total_kiops, args)),
                stats::Table::Num(NormKiops(burst.bare_total_kiops, args)),
                drop(burst.total_kiops, burst.bare_total_kiops)});
  table.AddRow(
      {"constant-rate",
       stats::Table::Num(NormKiops(constant.total_kiops, args)),
       stats::Table::Num(NormKiops(constant.bare_total_kiops, args)),
       drop(constant.total_kiops, constant.bare_total_kiops)});
  table.AddRow(
      {"burst, no conversion",
       stats::Table::Num(NormKiops(burst_basic.total_kiops, args)),
       stats::Table::Num(NormKiops(burst.bare_total_kiops, args)),
       drop(burst_basic.total_kiops, burst.bare_total_kiops)});
  table.Print();
  std::printf("\nshape check: burst drop >> constant-rate drop (paper: "
              "12.9%% vs 0.7%%). Full Haechi's token conversion recycles "
              "the idled capacity, so the paper's burst drop appears in "
              "the no-conversion row (see EXPERIMENTS.md).\n");
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
