// Microbenchmarks (google-benchmark) for the hot paths behind the paper's
// "negligible overhead for token management" claim and for the simulator
// substrate itself: event queues (binary heap vs timing wheel), stations,
// the token-report packing, Algorithm 1, and the zipfian sampler — plus
// the tracing-overhead contract (DESIGN.md §9.2): after the google
// benchmarks, main() sweeps full experiments over token batch B with the
// flight recorder on vs off and writes the ratios to BENCH_overhead.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/capacity_estimator.hpp"
#include "core/wire.hpp"
#include "harness/experiment.hpp"
#include "net/station.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/shared_region.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"
#include "stats/histogram.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

#if !HAECHI_TRACE_ENABLED
// Compile-time proof of the HAECHI_TRACE=OFF cost contract: the macro must
// elide its payload expressions entirely, leaving no branch and no
// argument evaluation on any instrumented path. ActiveRecorder() is not
// constexpr, so if the disabled macro expanded to anything that touches
// the recorder — or evaluated `++evaluated` — this function would not be
// constant-evaluable and the static_assert would fail to compile.
constexpr bool TraceArgumentsElided() {
  int evaluated = 0;
  HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, 0, obs::EventType::kTokenFetch,
                     0, ++evaluated);
  HAECHI_TRACE_DETAIL(obs::ActorKind::kKv, 0, obs::EventType::kKvIssue, 0,
                      ++evaluated);
  return evaluated == 0;
}
static_assert(TraceArgumentsElided(),
              "HAECHI_TRACE=OFF must compile trace sites down to ((void)0)");
#endif

// The span pipeline must follow the same contract: with tracing compiled
// out, AssembleSpans is an empty inline stub and span.cpp/profile.cpp
// contribute no code, and kSpanAssemblyCompiled is the flag callers (the
// audit CLI, the harness) branch on to say so.
static_assert(obs::kSpanAssemblyCompiled == (HAECHI_TRACE_ENABLED != 0),
              "kSpanAssemblyCompiled must track HAECHI_TRACE");

// --- event queues -----------------------------------------------------------

template <typename Queue>
void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state churn at a given queue depth: one pop + one push per
  // iteration, times spread over a short horizon (the simulator's regime).
  Queue queue;
  Rng rng(42);
  const auto depth = static_cast<std::size_t>(state.range(0));
  SimTime now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.Schedule(now + static_cast<SimTime>(rng.NextBelow(Millis(1))),
                   [] {});
  }
  for (auto _ : state) {
    sim::Event e = queue.PopNext();
    now = e.time;
    queue.Schedule(now + static_cast<SimTime>(rng.NextBelow(Millis(1))),
                   [] {});
    benchmark::DoNotOptimize(e.id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_EventQueueChurn, sim::BinaryHeapEventQueue)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(262144);
BENCHMARK_TEMPLATE(BM_EventQueueChurn, sim::HierarchicalTimingWheel)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(262144);

void BM_SimulatorTimerCascade(benchmark::State& state) {
  // A protocol-like timer mix: the cost of one simulated millisecond with
  // k periodic timers.
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> running;
    int fires = 0;
    running.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      running.push_back(std::make_unique<sim::PeriodicTimer>(
          sim, Micros(100 + i), [&fires] { ++fires; }));
      running.back()->Start();
    }
    state.ResumeTiming();
    sim.RunUntil(Millis(1));
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_SimulatorTimerCascade)->Arg(10)->Arg(100);

// --- stations ---------------------------------------------------------------

void BM_FairShareStationFifo(benchmark::State& state) {
  sim::Simulator sim;
  net::FairShareStation station(sim, "bench", 0.0, 1, net::Discipline::kFifo);
  std::uint64_t served = 0;
  for (auto _ : state) {
    station.Submit(0, 100, [&served] { ++served; });
    sim.RunUntil(sim.Now() + 100);
  }
  benchmark::DoNotOptimize(served);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FairShareStationFifo);

void BM_FairShareStationRoundRobin(benchmark::State& state) {
  sim::Simulator sim;
  net::FairShareStation station(sim, "bench", 0.0, 1,
                                net::Discipline::kRoundRobin);
  std::uint64_t served = 0;
  net::FlowId flow = 0;
  for (auto _ : state) {
    station.Submit(flow, 100, [&served] { ++served; });
    flow = (flow + 1) % 16;
    sim.RunUntil(sim.Now() + 100);
  }
  benchmark::DoNotOptimize(served);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FairShareStationRoundRobin);

// --- token management hot paths ---------------------------------------------

void BM_ReportPacking(benchmark::State& state) {
  // The engine's 1 ms reporting path boils down to this packing plus one
  // 8-byte RDMA write.
  std::uint32_t period = 0;
  std::uint64_t residual = 123456, completed = 654321;
  for (auto _ : state) {
    const std::uint64_t packed =
        core::PackReport(++period, residual, completed);
    benchmark::DoNotOptimize(core::ReportResidual(packed));
    benchmark::DoNotOptimize(core::ReportCompleted(packed));
    benchmark::DoNotOptimize(core::ReportPeriod(packed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReportPacking);

void BM_CapacityEstimator(benchmark::State& state) {
  core::CapacityEstimator est({1'570'000, 125'600, 47'100, 8});
  Rng rng(7);
  for (auto _ : state) {
    est.OnPeriodEnd(1'400'000 +
                    static_cast<std::int64_t>(rng.NextBelow(200'000)));
    benchmark::DoNotOptimize(est.Estimate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapacityEstimator);

// --- workload / stats -------------------------------------------------------

void BM_ZipfianSample(benchmark::State& state) {
  ZipfianSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianSample)->Arg(1024)->Arg(1048576);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(9);
  for (auto _ : state) {
    histogram.Record(static_cast<std::int64_t>(rng.NextBelow(10'000'000)));
  }
  benchmark::DoNotOptimize(histogram.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(9);
  for (int i = 0; i < 1'000'000; ++i) {
    histogram.Record(static_cast<std::int64_t>(rng.NextBelow(10'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.ValueAtQuantile(0.999));
  }
}
BENCHMARK(BM_HistogramQuantile);

// --- concurrent runtime primitives ------------------------------------------

/// One shared pool region per shard count, like the monitor's region in
/// --runtime=threads. Re-primed by thread 0 each run so no word ever goes
/// deeply negative across Threads() sweeps.
runtime::SharedRegion& BenchRegion(std::size_t shards) {
  static runtime::SharedRegion region1(1, 1);
  static runtime::SharedRegion region4(1, 4);
  static runtime::SharedRegion region8(1, 8);
  switch (shards) {
    case 4:
      return region4;
    case 8:
      return region8;
    default:
      return region1;
  }
}

void BM_RuntimePoolFaaContended(benchmark::State& state) {
  // Step T3 under contention: every client thread FAAs -B on the same
  // cache line. This was the hot word of the whole threaded runtime
  // before sharding; the single-word arm is the baseline the sharded
  // benchmark below is measured against.
  runtime::SharedRegion& region = BenchRegion(1);
  if (state.thread_index() == 0) {
    region.ExchangePool(0, std::int64_t{1} << 60);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.FetchAddPool(0, -50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimePoolFaaContended)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_RuntimePoolFaaSharded(benchmark::State& state) {
  // The sharded pool: each thread homes on shard (thread % K) exactly like
  // engine slots do, so K >= threads means zero FAA contention and the
  // sharded-vs-single-word ratio is the win the rebalancer pays for.
  const auto shards = static_cast<std::size_t>(state.range(0));
  runtime::SharedRegion& region = BenchRegion(shards);
  const std::size_t home =
      static_cast<std::size_t>(state.thread_index()) % shards;
  if (state.thread_index() == 0) {
    for (std::size_t s = 0; s < shards; ++s) {
      region.ExchangePool(s, std::int64_t{1} << 60);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.FetchAddPool(home, -50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimePoolFaaSharded)
    ->ArgNames({"shards"})
    ->Args({4})
    ->Args({8})
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_RuntimeSeqlockReportWrite(benchmark::State& state) {
  // The client's 1 ms report path in threads mode: pack + seqlock'd
  // 16-byte slot publication (the wall-clock twin of BM_ReportPacking).
  runtime::SharedRegion region(1);
  runtime::SeqlockSlot& slot = region.slot(0);
  std::uint32_t period = 0;
  for (auto _ : state) {
    const std::uint64_t packed = core::PackReport(++period, 123456, 654321);
    slot.Write(packed, static_cast<SimTime>(period));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeSeqlockReportWrite);

void BM_RuntimeSeqlockRead(benchmark::State& state) {
  // The monitor's per-check slot scan against a quiescent slot (the
  // common case: reports are written every ~1 ms, read every ~1 ms).
  runtime::SharedRegion region(1);
  runtime::SeqlockSlot& slot = region.slot(0);
  slot.Write(core::PackReport(1, 10, 20), 1);
  for (auto _ : state) {
    const runtime::SeqlockSlot::Snapshot snap = slot.Read();
    benchmark::DoNotOptimize(snap.packed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeSeqlockRead);

/// The pre-padding 16-byte report slot layout: four of these share one
/// cache line, so neighbouring clients' report writes false-share. Kept
/// here (not in shared_region.hpp) purely as the packed arm of the
/// padded-vs-packed microbenchmark.
struct PackedReportSlot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint64_t> packed{0};
  std::atomic<SimTime> written_at{0};

  void Write(std::uint64_t value, SimTime at) {
    std::uint32_t s = seq.load(std::memory_order_relaxed);
    while ((s & 1u) != 0 ||
           !seq.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      s = seq.load(std::memory_order_relaxed);
    }
    packed.store(value, std::memory_order_relaxed);
    written_at.store(at, std::memory_order_relaxed);
    seq.store(s + 2, std::memory_order_release);
  }
};
static_assert(sizeof(PackedReportSlot) <= 24,
              "the packed arm must keep multiple slots per cache line");

void BM_RuntimeSeqlockNeighborWritesPacked(benchmark::State& state) {
  // N clients publishing reports into *adjacent packed* slots: every write
  // bounces the shared line between cores.
  static PackedReportSlot slots[16];
  PackedReportSlot& mine =
      slots[static_cast<std::size_t>(state.thread_index()) % 16];
  std::uint32_t period = 0;
  for (auto _ : state) {
    ++period;
    mine.Write(core::PackReport(period, 123456, 654321),
               static_cast<SimTime>(period));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeSeqlockNeighborWritesPacked)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_RuntimeSeqlockNeighborWritesPadded(benchmark::State& state) {
  // The shipped layout: SeqlockSlot is padded to 64 bytes, so the same
  // adjacent-writer pattern touches one private line per client.
  static runtime::SharedRegion region(1);
  runtime::SeqlockSlot& mine =
      region.slot(static_cast<std::size_t>(state.thread_index()) % 16);
  std::uint32_t period = 0;
  for (auto _ : state) {
    ++period;
    mine.Write(core::PackReport(period, 123456, 654321),
               static_cast<SimTime>(period));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeSeqlockNeighborWritesPadded)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- flight recorder --------------------------------------------------------

void BM_TraceEmitInactive(benchmark::State& state) {
  // The cost of an instrumentation site when no recorder is installed:
  // one pointer load + branch with tracing compiled in, literally nothing
  // with HAECHI_TRACE=OFF.
  std::int64_t i = 0;
  for (auto _ : state) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, 0,
                       obs::EventType::kTokenFetch, 0, i);
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitInactive);

#if HAECHI_TRACE_ENABLED
void BM_TraceEmitActive(benchmark::State& state) {
  sim::Simulator sim;
  obs::Recorder recorder(sim);
  obs::ScopedRecorder scope(&recorder);
  std::int64_t i = 0;
  for (auto _ : state) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, 0,
                       obs::EventType::kTokenFetch, 0, i);
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitActive);

/// A synthetic detail stream with the shape the assembler sees in practice:
/// per I/O one queued/fetch/fetch-done/issue/complete quintet, round-robin
/// across engines, strictly FIFO per engine (the engine queue's contract).
std::vector<obs::TraceEvent> MakeSpanEventStream(
    std::uint32_t engines, std::uint64_t ios_per_engine) {
  std::vector<obs::TraceEvent> events;
  events.reserve(static_cast<std::size_t>(engines) * ios_per_engine * 5);
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (std::uint64_t i = 0; i < ios_per_engine; ++i) {
    for (std::uint32_t engine = 0; engine < engines; ++engine) {
      const auto push = [&](obs::EventType type, std::int64_t a,
                            std::int64_t b) {
        obs::TraceEvent event;
        event.time = t;
        event.seq = seq++;
        event.type = type;
        event.actor_kind = obs::ActorKind::kEngine;
        event.actor = engine;
        event.period = static_cast<std::uint32_t>(i / 1024);
        event.a = a;
        event.b = b;
        event.c = 0;
        events.push_back(event);
        t += 50;
      };
      const auto io_id = static_cast<std::int64_t>(i);
      push(obs::EventType::kIoQueued, io_id, 1);
      push(obs::EventType::kTokenFetch, 1, 0);
      push(obs::EventType::kTokenFetchDone, 1, 0);
      push(obs::EventType::kIoIssue, io_id, 0);
      push(obs::EventType::kIoComplete, io_id, 0);
    }
  }
  return events;
}

void BM_SpanAssemble(benchmark::State& state) {
  // Span assembly over a pre-merged stream: the post-run cost the harness
  // pays once per detail-traced experiment (O(1) per event by design).
  const std::vector<obs::TraceEvent> events =
      MakeSpanEventStream(4, static_cast<std::uint64_t>(state.range(0)));
  std::uint64_t spans = 0;
  for (auto _ : state) {
    obs::SpanAssemblyStats stats;
    std::vector<obs::IoSpan> out = obs::AssembleSpans(events, &stats);
    spans = stats.spans;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spans));
}
BENCHMARK(BM_SpanAssemble)->Arg(1024)->Arg(65536);
#endif

// --- end-to-end tracing overhead sweep (BENCH_overhead.json) ----------------

/// A saturated 4-client Haechi run; wall-clock time dominated by the token
/// path when B is small (B=1 posts one FAA round trip per token).
harness::ExperimentConfig OverheadConfig(std::int64_t token_batch,
                                         bool tracing,
                                         bool detail = false) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 3;
  config.records = 256;
  config.qos.token_batch = token_batch;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.trace.enabled = tracing;
  // The detail arm measures the full span pipeline: per-I/O events plus
  // the post-run assembly inside Experiment::Run. Rings sized so the
  // detail stream does not wrap (a wrapped ring would shrink the
  // assembly input and flatter the number).
  config.trace.detail = detail;
  if (detail) config.trace.ring_capacity = 1u << 20;
  return config;
}

struct OverheadRun {
  std::int64_t token_batch = 0;
  bool tracing = false;
  double wall_ms = 0.0;
  std::uint64_t events_run = 0;
  std::int64_t completed = 0;
  double ops_per_sec = 0.0;  // simulated completions per wall second
  std::uint64_t spans = 0;   // assembled I/O spans (detail arm only)
};

OverheadRun MeasureOverhead(std::int64_t token_batch, bool tracing,
                            bool detail = false) {
  harness::Experiment experiment(
      OverheadConfig(token_batch, tracing, detail));
  const auto start = std::chrono::steady_clock::now();
  harness::ExperimentResult result = experiment.Run();
  const auto stop = std::chrono::steady_clock::now();

  OverheadRun run;
  run.token_batch = token_batch;
  run.tracing = tracing;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  run.events_run = result.events_run;
  for (std::uint32_t c = 0; c < 4; ++c) {
    run.completed += result.series.ClientTotal(MakeClientId(c));
  }
  run.ops_per_sec =
      static_cast<double>(run.completed) / (run.wall_ms / 1e3);
  run.spans = static_cast<std::uint64_t>(result.spans.size());
  return run;
}

/// One assembly pass over a 1M-event synthetic stream (800k spans): the
/// marginal ns/span cost of the profiler, independent of emission.
double MeasureSpanAssemblyNsPerSpan() {
#if HAECHI_TRACE_ENABLED
  const std::vector<obs::TraceEvent> events = MakeSpanEventStream(4, 50'000);
  obs::SpanAssemblyStats stats;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<obs::IoSpan> spans = obs::AssembleSpans(events, &stats);
  const auto stop = std::chrono::steady_clock::now();
  if (stats.spans == 0) return 0.0;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(stats.spans);
#else
  return 0.0;
#endif
}

// --- hand-rolled runtime micro measurements (into the JSON) -----------------
// The google benchmarks above give the interactive view; these feed the
// same two contrasts (sharded-vs-single-word FAA, padded-vs-packed seqlock
// writes) into BENCH_overhead.json so the bench_regress --overhead-bin
// refresh captures them without running the google-benchmark suite. Pure
// wall-clock numbers: regenerated, never gate-compared.

/// Runs `op(thread_index)` iters-per-thread times on `threads` threads and
/// returns mean wall nanoseconds per op.
template <typename Fn>
double MeasureThreadedNsPerOp(int threads, std::int64_t iters_per_thread,
                              Fn&& op) {
  std::atomic<bool> start{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (std::int64_t i = 0; i < iters_per_thread; ++i) op(t);
    });
  }
  const auto begin = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& thread : pool) thread.join();
  const auto end = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(end - begin).count();
  return ns / static_cast<double>(iters_per_thread * threads);
}

double MeasureFaaNsPerOp(std::size_t shards, int threads) {
  runtime::SharedRegion region(1, shards);
  for (std::size_t s = 0; s < shards; ++s) {
    region.ExchangePool(s, std::int64_t{1} << 60);
  }
  return MeasureThreadedNsPerOp(threads, 1'000'000, [&](int t) {
    region.FetchAddPool(static_cast<std::size_t>(t) % shards, -50);
  });
}

double MeasureSeqlockWriteNsPerOp(bool padded, int threads) {
  if (padded) {
    static runtime::SharedRegion region(1);
    return MeasureThreadedNsPerOp(threads, 1'000'000, [&](int t) {
      region.slot(static_cast<std::size_t>(t) % 16)
          .Write(core::PackReport(1, 10, 20), 1);
    });
  }
  static PackedReportSlot packed[16];
  return MeasureThreadedNsPerOp(threads, 1'000'000, [&](int t) {
    packed[static_cast<std::size_t>(t) % 16].Write(
        core::PackReport(1, 10, 20), 1);
  });
}

/// Ceiling on the B=1 detail-tracing + span-assembly slowdown, in percent
/// of recorder-off throughput. Wall-clock based, so the band is generous
/// (~2x the measured delta on the reference machine); bench_regress fails
/// the refresh when a change pushes the span pipeline past it.
constexpr double kSpanDeltaGatePercent = 75.0;

/// Sweeps B in {1, 10, 100, 1000} with the recorder off then on and writes
/// the machine-readable summary the overhead contract is checked against —
/// plus the sharded-FAA and seqlock-padding micro numbers.
int WriteOverheadJson(const std::string& path) {
  std::vector<OverheadRun> runs;
  for (const std::int64_t batch : {1, 10, 100, 1000}) {
    // Off first, on second, so cache warm-up favours the tracing arm
    // symmetrically across batches.
    runs.push_back(MeasureOverhead(batch, false));
    runs.push_back(MeasureOverhead(batch, true));
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"overhead\",\n");
  std::fprintf(out, "  \"trace_compiled\": %s,\n",
               HAECHI_TRACE_ENABLED ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const OverheadRun& r = runs[i];
    std::fprintf(out,
                 "    {\"token_batch\": %lld, \"tracing\": %s, "
                 "\"wall_ms\": %.3f, \"events_run\": %llu, "
                 "\"completed\": %lld, \"ops_per_sec\": %.1f}%s\n",
                 static_cast<long long>(r.token_batch),
                 r.tracing ? "true" : "false", r.wall_ms,
                 static_cast<unsigned long long>(r.events_run),
                 static_cast<long long>(r.completed), r.ops_per_sec,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"tracing_delta_percent\": {");
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const double off = runs[i].ops_per_sec;
    const double on = runs[i + 1].ops_per_sec;
    std::fprintf(out, "%s\"%lld\": %.2f", i > 0 ? ", " : "",
                 static_cast<long long>(runs[i].token_batch),
                 off > 0.0 ? (off - on) / off * 100.0 : 0.0);
  }
  std::fprintf(out, "},\n");

  // Span pipeline at B=1 (the worst case: one FAA per token, so the run is
  // already token-path bound): per-I/O detail events plus the post-run
  // span assembly inside Experiment::Run, against the B=1 recorder-off
  // arm. bench_regress gates span_delta_percent against the committed
  // span_delta_gate_percent (rewritten verbatim on refresh, so the bound
  // survives regeneration). Under HAECHI_TRACE=OFF detail is inert and
  // the delta collapses to noise; the gate only applies when
  // trace_compiled is true.
  const OverheadRun span_run = MeasureOverhead(1, true, true);
  const double off_b1 = runs.front().ops_per_sec;
  const double span_delta =
      off_b1 > 0.0 ? (off_b1 - span_run.ops_per_sec) / off_b1 * 100.0 : 0.0;
  std::fprintf(out,
               "  \"span_detail_run\": {\"token_batch\": 1, "
               "\"wall_ms\": %.3f, \"completed\": %lld, "
               "\"ops_per_sec\": %.1f, \"spans\": %llu},\n",
               span_run.wall_ms, static_cast<long long>(span_run.completed),
               span_run.ops_per_sec,
               static_cast<unsigned long long>(span_run.spans));
  std::fprintf(out, "  \"span_delta_percent\": %.2f,\n", span_delta);
  std::fprintf(out, "  \"span_delta_gate_percent\": %.1f,\n",
               kSpanDeltaGatePercent);
  std::fprintf(out, "  \"span_assembly_ns_per_span\": %.1f,\n",
               MeasureSpanAssemblyNsPerSpan());

  // Sharded-vs-single-word pool FAA and padded-vs-packed seqlock report
  // writes (wall ns/op; informational, not gate-compared).
  std::fprintf(out, "  \"pool_faa_ns_per_op\": [\n");
  const std::size_t shard_counts[] = {1, 4, 8};
  const int thread_counts[] = {1, 4, 8};
  bool first = true;
  for (const std::size_t shards : shard_counts) {
    for (const int threads : thread_counts) {
      std::fprintf(out, "%s    {\"shards\": %zu, \"threads\": %d, "
                        "\"ns_per_op\": %.1f}",
                   first ? "" : ",\n", shards, threads,
                   MeasureFaaNsPerOp(shards, threads));
      first = false;
    }
  }
  std::fprintf(out, "\n  ],\n  \"seqlock_write_ns_per_op\": [\n");
  first = true;
  for (const bool padded : {false, true}) {
    for (const int threads : thread_counts) {
      std::fprintf(out, "%s    {\"layout\": \"%s\", \"threads\": %d, "
                        "\"ns_per_op\": %.1f}",
                   first ? "" : ",\n", padded ? "padded" : "packed", threads,
                   MeasureSeqlockWriteNsPerOp(padded, threads));
      first = false;
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("tracing overhead sweep written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace haechi

int main(int argc, char** argv) {
  // Peel off our own flag before google-benchmark sees the argv.
  std::string json_out = "BENCH_overhead.json";
  bool sweep = true;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg == "--no-sweep") {
      sweep = false;  // microbenchmarks only
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sweep ? haechi::WriteOverheadJson(json_out) : 0;
}
