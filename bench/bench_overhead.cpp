// Microbenchmarks (google-benchmark) for the hot paths behind the paper's
// "negligible overhead for token management" claim and for the simulator
// substrate itself: event queues (binary heap vs timing wheel), stations,
// the token-report packing, Algorithm 1, and the zipfian sampler.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/capacity_estimator.hpp"
#include "core/wire.hpp"
#include "net/station.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"
#include "stats/histogram.hpp"

namespace haechi {
namespace {

// --- event queues -----------------------------------------------------------

template <typename Queue>
void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state churn at a given queue depth: one pop + one push per
  // iteration, times spread over a short horizon (the simulator's regime).
  Queue queue;
  Rng rng(42);
  const auto depth = static_cast<std::size_t>(state.range(0));
  SimTime now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.Schedule(now + static_cast<SimTime>(rng.NextBelow(Millis(1))),
                   [] {});
  }
  for (auto _ : state) {
    sim::Event e = queue.PopNext();
    now = e.time;
    queue.Schedule(now + static_cast<SimTime>(rng.NextBelow(Millis(1))),
                   [] {});
    benchmark::DoNotOptimize(e.id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_EventQueueChurn, sim::BinaryHeapEventQueue)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(262144);
BENCHMARK_TEMPLATE(BM_EventQueueChurn, sim::HierarchicalTimingWheel)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(262144);

void BM_SimulatorTimerCascade(benchmark::State& state) {
  // A protocol-like timer mix: the cost of one simulated millisecond with
  // k periodic timers.
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> running;
    int fires = 0;
    running.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      running.push_back(std::make_unique<sim::PeriodicTimer>(
          sim, Micros(100 + i), [&fires] { ++fires; }));
      running.back()->Start();
    }
    state.ResumeTiming();
    sim.RunUntil(Millis(1));
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_SimulatorTimerCascade)->Arg(10)->Arg(100);

// --- stations ---------------------------------------------------------------

void BM_FairShareStationFifo(benchmark::State& state) {
  sim::Simulator sim;
  net::FairShareStation station(sim, "bench", 0.0, 1, net::Discipline::kFifo);
  std::uint64_t served = 0;
  for (auto _ : state) {
    station.Submit(0, 100, [&served] { ++served; });
    sim.RunUntil(sim.Now() + 100);
  }
  benchmark::DoNotOptimize(served);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FairShareStationFifo);

void BM_FairShareStationRoundRobin(benchmark::State& state) {
  sim::Simulator sim;
  net::FairShareStation station(sim, "bench", 0.0, 1,
                                net::Discipline::kRoundRobin);
  std::uint64_t served = 0;
  net::FlowId flow = 0;
  for (auto _ : state) {
    station.Submit(flow, 100, [&served] { ++served; });
    flow = (flow + 1) % 16;
    sim.RunUntil(sim.Now() + 100);
  }
  benchmark::DoNotOptimize(served);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FairShareStationRoundRobin);

// --- token management hot paths ---------------------------------------------

void BM_ReportPacking(benchmark::State& state) {
  // The engine's 1 ms reporting path boils down to this packing plus one
  // 8-byte RDMA write.
  std::uint32_t period = 0;
  std::uint64_t residual = 123456, completed = 654321;
  for (auto _ : state) {
    const std::uint64_t packed =
        core::PackReport(++period, residual, completed);
    benchmark::DoNotOptimize(core::ReportResidual(packed));
    benchmark::DoNotOptimize(core::ReportCompleted(packed));
    benchmark::DoNotOptimize(core::ReportPeriod(packed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReportPacking);

void BM_CapacityEstimator(benchmark::State& state) {
  core::CapacityEstimator est({1'570'000, 125'600, 47'100, 8});
  Rng rng(7);
  for (auto _ : state) {
    est.OnPeriodEnd(1'400'000 +
                    static_cast<std::int64_t>(rng.NextBelow(200'000)));
    benchmark::DoNotOptimize(est.Estimate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapacityEstimator);

// --- workload / stats -------------------------------------------------------

void BM_ZipfianSample(benchmark::State& state) {
  ZipfianSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianSample)->Arg(1024)->Arg(1048576);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(9);
  for (auto _ : state) {
    histogram.Record(static_cast<std::int64_t>(rng.NextBelow(10'000'000)));
  }
  benchmark::DoNotOptimize(histogram.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(9);
  for (int i = 0; i < 1'000'000; ++i) {
    histogram.Record(static_cast<std::int64_t>(rng.NextBelow(10'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.ValueAtQuantile(0.999));
  }
}
BENCHMARK(BM_HistogramQuantile);

}  // namespace
}  // namespace haechi

BENCHMARK_MAIN();
