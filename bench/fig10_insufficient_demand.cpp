// Figure 10 (Experiment 2B): completed I/Os per client when clients C1 and
// C2 stop issuing before using their reservation. Haechi's token conversion
// recycles the surrendered tokens to C3-C10, which then exceed their
// reservations; Basic Haechi (no conversion) wastes them.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

struct RunResult {
  std::vector<double> reservation_kiops;
  std::vector<double> completed_kiops;
  double total_kiops;
};

RunResult Run(const BenchArgs& args, bool zipf, harness::Mode mode) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/10);
  config.mode = mode;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = zipf ? PaperZipf(reserved)
                                 : workload::UniformShare(reserved, 10);
  // C1, C2 stop at half their reservation; everyone else is hungry.
  AddClients(config, reservations,
             [pool](std::size_t i, std::int64_t r) {
               return i < 2 ? r / 2 : r + pool;
             },
             workload::RequestPattern::kOpenLoop);
  const auto periods = config.measure_periods;
  const auto period = config.qos.period;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();
  RunResult out;
  for (std::uint32_t c = 0; c < 10; ++c) {
    out.reservation_kiops.push_back(static_cast<double>(reservations[c]) /
                                    1e3);
    out.completed_kiops.push_back(
        ToKiops(r.series.ClientTotal(MakeClientId(c)),
                static_cast<SimDuration>(periods) * period));
  }
  out.total_kiops = r.total_kiops;
  return out;
}

void PrintDistribution(const BenchArgs& args, const char* name,
                       const RunResult& haechi, const RunResult& basic) {
  std::printf("--- %s reservation distribution ---\n", name);
  stats::Table table(
      {"client", "reservation", "haechi", "basic haechi", "haechi gain"});
  for (std::size_t c = 0; c < 10; ++c) {
    table.AddRow(
        {"C" + std::to_string(c + 1),
         stats::Table::Num(NormKiops(haechi.reservation_kiops[c], args)),
         stats::Table::Num(NormKiops(haechi.completed_kiops[c], args)),
         stats::Table::Num(NormKiops(basic.completed_kiops[c], args)),
         stats::Table::Num(
             (haechi.completed_kiops[c] / basic.completed_kiops[c] - 1.0) *
                 100.0,
             1) + "%"});
  }
  table.Print();
  std::printf("total: haechi %.0f KIOPS vs basic %.0f KIOPS (+%.1f%%)\n\n",
              NormKiops(haechi.total_kiops, args),
              NormKiops(basic.total_kiops, args),
              (haechi.total_kiops / basic.total_kiops - 1.0) * 100.0);
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 10 / Experiment 2B: insufficient demand at C1, C2",
              "C1/C2 fall short of reservation (no demand); with token "
              "conversion C3-C10 exceed theirs, unlike Basic Haechi");

  PrintDistribution(args, "Uniform",
                    Run(args, false, harness::Mode::kHaechi),
                    Run(args, false, harness::Mode::kBasicHaechi));
  PrintDistribution(args, "Zipf",
                    Run(args, true, harness::Mode::kHaechi),
                    Run(args, true, harness::Mode::kBasicHaechi));
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
