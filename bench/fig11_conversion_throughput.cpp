// Figure 11 (Experiment 2B): total throughput of Basic Haechi, Haechi, and
// the bare system when C1 and C2 have insufficient demand. Paper: Haechi's
// token conversion keeps throughput close to the bare system, while Basic
// Haechi wastes the unused reservations.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

double Run(const BenchArgs& args, bool zipf, harness::Mode mode) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/10);
  config.mode = mode;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = zipf ? PaperZipf(reserved)
                                 : workload::UniformShare(reserved, 10);
  AddClients(config, reservations,
             [pool](std::size_t i, std::int64_t r) {
               return i < 2 ? r / 2 : r + pool;
             },
             mode == harness::Mode::kBare
                 ? workload::RequestPattern::kBurst
                 : workload::RequestPattern::kOpenLoop);
  return harness::Experiment(std::move(config)).Run().total_kiops;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 11 / Experiment 2B: total throughput under "
              "insufficient demand at C1, C2",
              "haechi ~ bare (work-conserving); basic haechi wastes the "
              "unused reservation tokens");

  stats::Table table({"distribution", "bare KIOPS", "haechi KIOPS",
                      "basic haechi KIOPS", "haechi/bare", "basic/bare"});
  for (const bool zipf : {false, true}) {
    const double bare =
        NormKiops(Run(args, zipf, harness::Mode::kBare), args);
    const double haechi =
        NormKiops(Run(args, zipf, harness::Mode::kHaechi), args);
    const double basic =
        NormKiops(Run(args, zipf, harness::Mode::kBasicHaechi), args);
    table.AddRow({zipf ? "Zipf" : "Uniform", stats::Table::Num(bare),
                  stats::Table::Num(haechi), stats::Table::Num(basic),
                  stats::Table::Num(haechi / bare, 3),
                  stats::Table::Num(basic / bare, 3)});
  }
  table.Print();
  std::printf("\nshape check: haechi/bare ~ 1.0 and basic/bare well below "
              "(paper Fig 11)\n");
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
