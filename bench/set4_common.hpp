// Shared runner for Experiment Set 4 (Figures 16-19): Haechi under a
// capacity step caused by background network traffic outside its domain.
// 80% of the initial capacity estimate is reserved; background jobs on
// every client node consume ~15% of the data node while active.
#pragma once

#include "bench/bench_common.hpp"

namespace haechi::bench {

struct Set4Result {
  std::vector<std::int64_t> period_totals;   // completed I/Os per period
  std::vector<std::int64_t> c1_per_period;   // highest-reservation client
  std::vector<std::int64_t> estimates;       // capacity estimate per period
  std::int64_t c1_reservation = 0;
  std::size_t step_period = 0;  // period index where the step happens
};

/// `congestion_starts`: true = background load begins mid-run (capacity
/// drops; the paper's over-estimation case, Figs 16/17); false =
/// background load present from the start and removed mid-run (capacity
/// rises; under-estimation, Figs 18/19).
inline Set4Result RunSet4(const BenchArgs& args, bool zipf,
                          bool congestion_starts) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/30);
  config.mode = harness::Mode::kHaechi;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * 8 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = zipf ? PaperZipf(reserved)
                                 : workload::UniformShare(reserved, 10);
  AddClients(config, reservations,
             [pool](std::size_t, std::int64_t r) { return r + pool; },
             workload::RequestPattern::kOpenLoop);

  // The step lands mid-measurement (paper: 15 s into a 30 s window).
  const std::size_t step_period = config.measure_periods / 2;
  const SimTime step_at =
      config.warmup +
      static_cast<SimTime>(step_period) * config.qos.period;
  config.background_demand = cap * 15 / 100 / 10;  // 15% across 10 nodes
  if (congestion_starts) {
    config.background_on = step_at;
    config.background_off = kSimTimeMax;
  } else {
    config.background_on = 0;
    config.background_off = step_at;
  }

  const auto periods = config.measure_periods;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();

  Set4Result out;
  out.c1_reservation = reservations[0];
  out.step_period = step_period;
  for (std::size_t p = 0; p < periods; ++p) {
    out.period_totals.push_back(r.series.PeriodTotal(p));
    out.c1_per_period.push_back(r.series.At(p, MakeClientId(0)));
  }
  // The capacity trace includes warm-up periods; keep the measured tail.
  const std::size_t skip = r.capacity_trace.size() > periods
                               ? r.capacity_trace.size() - periods
                               : 0;
  for (std::size_t i = skip; i < r.capacity_trace.size(); ++i) {
    out.estimates.push_back(r.capacity_trace[i].estimate);
  }
  return out;
}

inline void PrintSeries(const BenchArgs& args, const Set4Result& r,
                        bool show_c1) {
  stats::Table table(show_c1
                         ? std::vector<std::string>{"period", "C1 KIOPS",
                                                    "C1 reservation",
                                                    "estimate KIOPS", "phase"}
                         : std::vector<std::string>{"period", "total KIOPS",
                                                    "estimate KIOPS",
                                                    "phase"});
  for (std::size_t p = 0; p < r.period_totals.size(); ++p) {
    const char* phase = p < r.step_period ? "before" : "after";
    const double estimate =
        p < r.estimates.size()
            ? NormKiops(static_cast<double>(r.estimates[p]) / 1e3, args)
            : 0.0;
    if (show_c1) {
      table.AddRow(
          {std::to_string(p),
           stats::Table::Num(NormKiops(
               static_cast<double>(r.c1_per_period[p]) / 1e3, args)),
           stats::Table::Num(NormKiops(
               static_cast<double>(r.c1_reservation) / 1e3, args)),
           stats::Table::Num(estimate), phase});
    } else {
      table.AddRow(
          {std::to_string(p),
           stats::Table::Num(NormKiops(
               static_cast<double>(r.period_totals[p]) / 1e3, args)),
           stats::Table::Num(estimate), phase});
    }
  }
  table.Print();
}

}  // namespace haechi::bench
