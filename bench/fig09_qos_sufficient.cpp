// Figure 9 (Experiment 2A): completed I/Os per client with sufficient
// demand, Haechi vs the bare system, for Uniform and Zipf reservation
// distributions. 90% of capacity reserved; demand = reservation + initial
// global pool. Paper: with Haechi every client meets its reservation every
// period; bare serves everyone equally, so Zipf's high reservations
// (C1/C2: 236K) are missed (they get ~158K).
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

struct RunResult {
  std::vector<double> reservation_kiops;
  std::vector<double> completed_kiops;   // mean per period
  std::vector<double> min_per_period;    // worst period
  double total_kiops;
};

RunResult Run(const BenchArgs& args, bool zipf, harness::Mode mode) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/10);
  config.mode = mode;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = zipf ? PaperZipf(reserved)
                                 : workload::UniformShare(reserved, 10);
  // Paper: "a client's demand equals the sum of the initial global
  // tokens and its reservation". The Haechi runs need demand sufficiency
  // (Definition 1), realised by the open-loop pattern; the bare baseline
  // uses the closed-loop burst pattern of Experiment 1, which is what
  // produces the paper's pure equal sharing (~158K each).
  AddClients(config, reservations,
             [pool](std::size_t, std::int64_t r) { return r + pool; },
             mode == harness::Mode::kBare
                 ? workload::RequestPattern::kBurst
                 : workload::RequestPattern::kOpenLoop);
  const auto periods = config.measure_periods;
  const auto period = config.qos.period;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();
  RunResult out;
  for (std::uint32_t c = 0; c < 10; ++c) {
    out.reservation_kiops.push_back(static_cast<double>(reservations[c]) /
                                    1e3);
    out.completed_kiops.push_back(
        ToKiops(r.series.ClientTotal(MakeClientId(c)),
                static_cast<SimDuration>(periods) * period));
    out.min_per_period.push_back(
        static_cast<double>(r.series.ClientMinPerPeriod(MakeClientId(c))) /
        1e3);
  }
  out.total_kiops = r.total_kiops;
  return out;
}

void PrintDistribution(const BenchArgs& args, const char* name,
                       const RunResult& haechi, const RunResult& bare) {
  std::printf("--- %s reservation distribution ---\n", name);
  stats::Table table({"client", "reservation", "haechi", "haechi min/period",
                      "bare", "meets (haechi/bare)"});
  int haechi_met = 0, bare_met = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    const bool hm =
        haechi.min_per_period[c] >= haechi.reservation_kiops[c] * 0.98;
    const bool bm = bare.completed_kiops[c] >= bare.reservation_kiops[c];
    haechi_met += hm;
    bare_met += bm;
    table.AddRow(
        {"C" + std::to_string(c + 1),
         stats::Table::Num(NormKiops(haechi.reservation_kiops[c], args)),
         stats::Table::Num(NormKiops(haechi.completed_kiops[c], args)),
         stats::Table::Num(NormKiops(haechi.min_per_period[c], args)),
         stats::Table::Num(NormKiops(bare.completed_kiops[c], args)),
         std::string(hm ? "yes" : "NO") + " / " + (bm ? "yes" : "NO")});
  }
  table.Print();
  std::printf("clients meeting reservation: haechi %d/10, bare %d/10\n",
              haechi_met, bare_met);
  std::printf("total: haechi %.0f KIOPS, bare %.0f KIOPS (haechi overhead "
              "%.2f%%; paper: <0.1%%)\n\n",
              NormKiops(haechi.total_kiops, args),
              NormKiops(bare.total_kiops, args),
              (1.0 - haechi.total_kiops / bare.total_kiops) * 100.0);
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 9 / Experiment 2A: QoS with sufficient demand",
              "haechi meets every reservation in every period; bare serves "
              "equally and misses Zipf's high reservations (C1/C2 get "
              "~158K of 236K)");

  PrintDistribution(args, "Uniform",
                    Run(args, false, harness::Mode::kHaechi),
                    Run(args, false, harness::Mode::kBare));
  PrintDistribution(args, "Zipf",
                    Run(args, true, harness::Mode::kHaechi),
                    Run(args, true, harness::Mode::kBare));
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
