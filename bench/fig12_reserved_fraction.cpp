// Figure 12 (Experiment 2C): Haechi throughput as the reserved fraction of
// capacity varies from 50% to 90%, Uniform vs Zipf reservations. Paper:
// Uniform stays at C_G throughout; Zipf droops as the reserved fraction
// grows (global tokens run out, low-reservation clients idle, and the
// remaining high-reservation clients are bounded by C_L).
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

double Run(const BenchArgs& args, bool zipf, int reserved_pct,
           harness::Mode mode = harness::Mode::kHaechi) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/8);
  config.mode = mode;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * reserved_pct / 100;
  const std::int64_t pool = cap - reserved;
  const auto reservations = zipf ? PaperZipf(reserved)
                                 : workload::UniformShare(reserved, 10);
  // Experiment 2C uses the closed-loop burst pattern ("as before, all
  // clients use the burst request pattern"): the droop at high reserved
  // fractions comes from low-reservation clients idling once the small
  // pool is gone while the completion-gated high-reservation clients
  // cannot exceed the local capacity C_L — Experiment 1C's effect.
  AddClients(config, reservations,
             [pool](std::size_t, std::int64_t r) { return r + pool; },
             workload::RequestPattern::kBurst);
  return harness::Experiment(std::move(config)).Run().total_kiops;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 12 / Experiment 2C: throughput vs reserved capacity",
              "uniform flat at ~C_G; zipf approaches uniform at low "
              "reservation and droops at 90% (local capacity limit)");

  stats::Table table({"reserved %", "uniform KIOPS", "zipf KIOPS",
                      "zipf basic-haechi", "basic/uniform"});
  double basic50 = 0, basic90 = 0, uni90 = 0;
  for (const int pct : {50, 60, 70, 80, 90}) {
    const double uniform = NormKiops(Run(args, false, pct), args);
    const double zipf = NormKiops(Run(args, true, pct), args);
    const double basic = NormKiops(
        Run(args, true, pct, harness::Mode::kBasicHaechi), args);
    if (pct == 50) basic50 = basic;
    if (pct == 90) {
      basic90 = basic;
      uni90 = uniform;
    }
    table.AddRow({std::to_string(pct), stats::Table::Num(uniform),
                  stats::Table::Num(zipf), stats::Table::Num(basic),
                  stats::Table::Num(basic / uniform, 3)});
  }
  table.Print();
  std::printf("\nshape check: the paper's droop appears without token "
              "conversion (basic@50%%/basic@90%% = %.3f, basic@90%% below "
              "uniform by %.1f%%). Full Haechi's conversion recycles the "
              "decay-clipped tokens of service-lagging clients and removes "
              "the droop entirely — see EXPERIMENTS.md.\n",
              basic50 / basic90, (1.0 - basic90 / uni90) * 100.0);
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
