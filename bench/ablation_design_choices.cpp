// Ablations of the design choices DESIGN.md §4 calls out, each run as a
// small scaled cluster:
//   1. FAA batch size B (paper: 1000) — remote-atomic rate vs batching;
//   2. token conversion on/off — work conservation under idle reservations;
//   3. responder service discipline — FIFO (arrival order, the RNIC
//      behaviour Haechi's guarantee rests on) vs idealised per-QP
//      round-robin, which starves high-reservation clients;
//   4. report/check interval delta — guarantee robustness vs control rate.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

constexpr double kAblationScale = 0.05;

harness::ExperimentConfig ZipfConfig(const BenchArgs& args) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/6);
  config.net.capacity_scale = kAblationScale;
  config.warmup = Seconds(2);
  config.mode = harness::Mode::kHaechi;
  const std::int64_t cap = CapacityTokens(config);
  const std::int64_t reserved = cap * 9 / 10;
  const auto reservations = PaperZipf(reserved);
  for (const auto r : reservations) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + (cap - reserved);
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  return config;
}

struct Outcome {
  double total_kiops;
  int reservations_met;
  std::uint64_t faa_ops;
};

Outcome Run(harness::ExperimentConfig config) {
  const auto reservations = config.clients;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();
  Outcome out{r.total_kiops, 0, 0};
  for (std::uint32_t c = 0; c < reservations.size(); ++c) {
    if (r.series.ClientMinPerPeriod(MakeClientId(c)) >=
        reservations[c].reservation * 97 / 100) {
      ++out.reservations_met;
    }
  }
  for (const auto& st : r.engine_stats) out.faa_ops += st.faa_ops;
  return out;
}

void AblateBatchSize(const BenchArgs& args) {
  std::printf("--- FAA batch size B (paper: 1000) ---\n");
  stats::Table table({"B", "KIOPS", "reservations met", "remote FAAs",
                      "FAAs per 1K I/Os"});
  for (const std::int64_t batch : {1, 10, 100, 1000}) {
    harness::ExperimentConfig config = ZipfConfig(args);
    config.qos.token_batch = batch;
    const double periods =
        static_cast<double>(config.measure_periods + 2);  // incl. warmup
    Outcome out = Run(std::move(config));
    table.AddRow({stats::Table::Int(batch),
                  stats::Table::Num(out.total_kiops),
                  std::to_string(out.reservations_met) + "/10",
                  stats::Table::Int(static_cast<std::int64_t>(out.faa_ops)),
                  stats::Table::Num(static_cast<double>(out.faa_ops) /
                                        (out.total_kiops * periods),
                                    2)});
  }
  table.Print();
  std::printf("batching cuts the remote-atomic rate by ~B while QoS holds\n\n");
}

void AblateConversion(const BenchArgs& args) {
  std::printf("--- token conversion (Haechi vs Basic Haechi) ---\n");
  stats::Table table({"mode", "KIOPS", "vs haechi"});
  double haechi_kiops = 0;
  for (const auto mode :
       {harness::Mode::kHaechi, harness::Mode::kBasicHaechi}) {
    harness::ExperimentConfig config = ZipfConfig(args);
    config.mode = mode;
    // Make C1, C2 idle so there is reservation slack to recycle.
    config.clients[0].demand = 0;
    config.clients[1].demand = 0;
    Outcome out = Run(std::move(config));
    if (mode == harness::Mode::kHaechi) haechi_kiops = out.total_kiops;
    table.AddRow({mode == harness::Mode::kHaechi ? "haechi" : "basic",
                  stats::Table::Num(out.total_kiops),
                  stats::Table::Num(out.total_kiops / haechi_kiops, 3)});
  }
  table.Print();
  std::printf("\n");
}

void AblateDiscipline(const BenchArgs& args) {
  std::printf("--- responder service discipline ---\n");
  stats::Table table({"discipline", "KIOPS", "reservations met"});
  for (const auto discipline :
       {net::Discipline::kRoundRobin, net::Discipline::kFifo}) {
    harness::ExperimentConfig config = ZipfConfig(args);
    config.net.responder_discipline = discipline;
    Outcome out = Run(std::move(config));
    table.AddRow(
        {discipline == net::Discipline::kFifo ? "FIFO (arrival order)"
                                              : "round-robin per QP",
         stats::Table::Num(out.total_kiops),
         std::to_string(out.reservations_met) + "/10"});
  }
  table.Print();
  std::printf("with the protocol's accounting fixes (grant tracking, "
              "period-tagged reports, token-conserving conversion) the "
              "guarantee holds under both disciplines; round-robin is the "
              "default as the faithful model of per-QP NIC arbitration\n\n");
}

void AblateCheckInterval(const BenchArgs& args) {
  std::printf("--- control intervals (delta; paper: 1 ms) ---\n");
  stats::Table table({"delta ms", "KIOPS", "reservations met"});
  for (const std::int64_t ms : {1, 5, 20}) {
    harness::ExperimentConfig config = ZipfConfig(args);
    config.qos.token_tick = Millis(ms);
    config.qos.check_interval = Millis(ms);
    config.qos.report_interval = Millis(ms);
    config.qos.pool_retry_interval = Millis(ms);
    config.qos.faa_end_guard = Millis(2 * ms);
    Outcome out = Run(std::move(config));
    table.AddRow({stats::Table::Int(ms), stats::Table::Num(out.total_kiops),
                  std::to_string(out.reservations_met) + "/10"});
  }
  table.Print();
  std::printf("coarser control still guarantees reservations; conversion "
              "and adaptation just react more slowly\n\n");
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Ablations: DESIGN.md §4 design choices",
              "run at 5% scale (shapes are scale-invariant)");
  AblateBatchSize(args);
  AblateConversion(args);
  AblateDiscipline(args);
  AblateCheckInterval(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
