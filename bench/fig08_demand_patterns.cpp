// Figure 8 (Experiment 1C): bare-system I/O completions under different
// spatial demand distributions and temporal request patterns.
//   (a) uniform demand, burst: capacity divides equally (~157K each);
//   (b) spike demand (3x340K + 7x80K), burst: total collapses to ~1380K,
//       hot clients stuck at ~278K;
//   (c) spike demand, constant-rate: hot clients reach ~332K, total ~1564K.
#include "bench/bench_common.hpp"

namespace haechi::bench {
namespace {

struct SubResult {
  std::vector<double> per_client_kiops;
  double total_kiops;
};

SubResult Run(const BenchArgs& args, const std::vector<std::int64_t>& demand,
              workload::RequestPattern pattern) {
  harness::ExperimentConfig config = BaseConfig(args, /*default_periods=*/10);
  config.mode = harness::Mode::kBare;
  for (const auto d : demand) {
    harness::ClientSpec spec;
    spec.demand = d;
    spec.pattern = pattern;
    config.clients.push_back(spec);
  }
  const auto periods = config.measure_periods;
  const auto period = config.qos.period;
  harness::ExperimentResult r = harness::Experiment(std::move(config)).Run();
  SubResult out;
  for (std::uint32_t c = 0; c < demand.size(); ++c) {
    out.per_client_kiops.push_back(
        ToKiops(r.series.ClientTotal(MakeClientId(c)),
                static_cast<SimDuration>(periods) * period));
  }
  out.total_kiops = r.total_kiops;
  return out;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 8 / Experiment 1C: demand distributions x request "
              "patterns (bare system)",
              "(a) uniform+burst: ~157K each, total ~1570K; (b) spike+burst: "
              "hot ~278K, total ~1380K; (c) spike+const-rate: hot ~332K, "
              "total ~1564K");

  const auto scale = [&](double v) {
    return static_cast<std::int64_t>(v * args.scale);
  };
  const auto uniform = workload::UniformShare(scale(1'580'000), 10);
  const auto spike =
      workload::SpikeShare(10, 3, scale(340'000), scale(80'000));

  const SubResult a = Run(args, uniform, workload::RequestPattern::kBurst);
  const SubResult b = Run(args, spike, workload::RequestPattern::kBurst);
  const SubResult c =
      Run(args, spike, workload::RequestPattern::kConstantRate);

  stats::Table table({"client", "demand(b,c)", "(a) uni+burst",
                      "(b) spike+burst", "(c) spike+const"});
  for (std::size_t i = 0; i < 10; ++i) {
    table.AddRow({"C" + std::to_string(i + 1),
                  stats::Table::Num(
                      NormKiops(static_cast<double>(spike[i]) / 1e3, args)),
                  stats::Table::Num(NormKiops(a.per_client_kiops[i], args)),
                  stats::Table::Num(NormKiops(b.per_client_kiops[i], args)),
                  stats::Table::Num(NormKiops(c.per_client_kiops[i], args))});
  }
  table.AddRow({"total", "-",
                stats::Table::Num(NormKiops(a.total_kiops, args)),
                stats::Table::Num(NormKiops(b.total_kiops, args)),
                stats::Table::Num(NormKiops(c.total_kiops, args))});
  table.Print();

  std::printf("\nshape check: (b) loses %.1f%% of (a)'s total (paper: "
              "~12%%); (c) recovers to %.1f%% of (a) (paper: ~99.6%%)\n",
              (1.0 - b.total_kiops / a.total_kiops) * 100.0,
              c.total_kiops / a.total_kiops * 100.0);
  std::printf("hot clients: burst %.0fK vs const-rate %.0fK (paper: 278K vs "
              "332K)\n",
              NormKiops(b.per_client_kiops[0], args),
              NormKiops(c.per_client_kiops[0], args));
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
