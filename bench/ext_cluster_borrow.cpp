// Extension bench: cross-server token borrowing in the cluster subsystem.
//
// Two data nodes, each profiling its 1/2 share of the cluster's token
// capacity. Four strictly-provisioned residents (limit == reservation)
// drag their reservations onto node 0 and consume them fully, squeezing
// node 0's admission headroom. Two managed clients then send nearly all of
// their above-reservation demand to node 0: the rebalancer cannot grow
// their node-0 splits past the squeezed admission, so part of each managed
// reservation is stranded on idle node 1 — where conversion keeps
// recycling it into node 1's pool while node 0's pool runs dry.
//
// With borrowing off, that idle pool is unreachable and the managed
// clients miss their reservations. With the adaptive (AdapTBF-style)
// policy the coordinator imports node 1's idle tokens whenever node 0 runs
// dry, repaying at period boundaries out of node 0's fresh pool —
// aggregate reserved attainment recovers while the conservation ledger
// stays exact.
#include "bench/bench_common.hpp"
#include "cluster/borrow.hpp"
#include "harness/cluster_experiment.hpp"

namespace haechi::bench {
namespace {

constexpr std::size_t kResidents = 4;
constexpr std::size_t kManagedClients = 2;

struct Outcome {
  double attained_kiops;  // reserved-attained throughput, managed clients
  double attainment;      // fraction of sum R_i met, mean over periods
  std::int64_t borrowed;
  std::int64_t repaid;
  std::int64_t outstanding;
};

Outcome Run(const BenchArgs& args, cluster::BorrowPolicy policy,
            double hot_fraction) {
  harness::ClusterExperimentConfig config;
  config.net.capacity_scale = args.scale == 1.0 ? 0.05 : args.scale;
  config.data_nodes = 2;
  config.warmup = Seconds(2);
  config.measure_periods = args.periods > 0 ? args.periods : 8;
  config.qos.token_batch = 100;
  config.seed = args.seed;
  const auto cap =
      static_cast<std::int64_t>(config.net.GlobalCapacityIops());

  // Residents first: the rebalancer visits clients in admission order, so
  // their node-0 shares claim the admission headroom before the managed
  // increases are considered. limit == reservation keeps them off the
  // global pool (T4 stops them at their provision).
  for (std::size_t i = 0; i < kResidents; ++i) {
    harness::ClusterClientSpec resident;
    resident.tenant = 1;
    resident.reservation = cap / 10;
    resident.limit = resident.reservation;
    resident.demand_per_node = {cap, 0};
    config.clients.push_back(resident);
  }
  // Managed clients under test: hot-node demand well above the
  // reservation, cold-node trickle.
  for (std::size_t i = 0; i < kManagedClients; ++i) {
    harness::ClusterClientSpec managed;
    managed.tenant = 0;
    managed.reservation = cap / 8;
    const auto demand = managed.reservation * 16 / 10;
    managed.demand_per_node = {
        static_cast<std::int64_t>(static_cast<double>(demand) *
                                  hot_fraction),
        static_cast<std::int64_t>(static_cast<double>(demand) *
                                  (1.0 - hot_fraction))};
    config.clients.push_back(managed);
  }
  std::int64_t managed_total = 0, resident_total = 0;
  for (const auto& client : config.clients) {
    (client.tenant == 0 ? managed_total : resident_total) +=
        client.reservation;
  }
  config.tenants = {{managed_total, 0}, {resident_total, 0}};

  config.cluster.borrow.policy = policy;
  // Scale the borrow knobs with the scenario, not the wall clock.
  config.cluster.dry_watermark = config.qos.token_batch * 5;
  config.cluster.lender_floor = config.qos.token_batch * 10;
  config.cluster.borrow.quota = cap / 20;
  config.cluster.borrow.min_quota = config.qos.token_batch;
  config.cluster.borrow.max_quota = cap / 4;

  const auto periods = config.measure_periods;
  const std::int64_t reservation = cap / 8;
  harness::ClusterExperiment exp(std::move(config));
  harness::ClusterExperimentResult r = exp.Run();

  // Aggregate reserved attainment: served I/Os credited only up to each
  // client's reservation (best-effort overshoot does not offset another
  // period's miss). Skip the first 2 periods (split convergence).
  std::int64_t attained = 0;
  for (std::size_t p = 2; p < periods; ++p) {
    for (std::size_t i = 0; i < kManagedClients; ++i) {
      const auto id =
          MakeClientId(static_cast<std::uint32_t>(kResidents + i));
      const std::int64_t served =
          r.node_series[0].At(p, id) + r.node_series[1].At(p, id);
      attained += std::min(served, reservation);
    }
  }
  Outcome out;
  out.attained_kiops =
      ToKiops(attained, static_cast<SimDuration>(periods - 2) * kSecond);
  out.attainment = static_cast<double>(attained) /
                   static_cast<double>(static_cast<std::int64_t>(
                                           periods - 2) *
                                       kManagedClients * reservation);
  out.borrowed = r.borrow_granted;
  out.repaid = r.borrow_repaid;
  out.outstanding = r.borrow_outstanding;
  return out;
}

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Extension: cross-server token borrowing",
              "a dry node's pool borrows idle peer tokens under an "
              "adaptive per-period quota, repaying at boundaries; "
              "stranded-reservation clients recover their guarantee");

  stats::Table table({"hot-node demand", "borrowing", "attained KIOPS",
                      "reserved attainment", "borrowed", "repaid",
                      "open loans"});
  for (const double hot : {0.8, 0.95}) {
    for (const cluster::BorrowPolicy policy :
         {cluster::BorrowPolicy::kOff, cluster::BorrowPolicy::kAdaptive}) {
      const Outcome out = Run(args, policy, hot);
      table.AddRow({stats::Table::Num(hot * 100, 0) + "%",
                    std::string(cluster::ToString(policy)),
                    stats::Table::Num(NormKiops(out.attained_kiops, args)),
                    stats::Table::Num(out.attainment * 100, 1) + "%",
                    stats::Table::Int(out.borrowed),
                    stats::Table::Int(out.repaid),
                    stats::Table::Int(out.outstanding)});
    }
  }
  table.Print();
  std::printf("\nshape check: with borrowing off the idle peer pool is "
              "unreachable and attainment is capped by the hot node's "
              "stranded split; the adaptive policy imports the idle tokens "
              "(quota doubling while fully consumed) and every loan is "
              "repaid or still on the books — granted == repaid + "
              "outstanding by ledger construction.\n");
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
