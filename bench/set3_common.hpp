// Shared runner for Experiment Set 3 (Figures 13-15): Haechi with the
// paper's Spike reservation distribution (C1-C3: 285K, C4-C10: 80K IOPS at
// full scale, 90% of capacity), driven by either the burst (64-outstanding
// closed-loop) or the constant-rate request pattern.
#pragma once

#include "bench/bench_common.hpp"

namespace haechi::bench {

struct Set3Result {
  std::vector<double> reservation_kiops;
  std::vector<double> completed_kiops;  // mean per period
  double total_kiops = 0.0;
  stats::Histogram latency;
  double bare_total_kiops = 0.0;  // same workload, no QoS
};

inline Set3Result RunSet3(const BenchArgs& args,
                          workload::RequestPattern pattern,
                          bool with_bare_baseline,
                          harness::Mode qos_mode = harness::Mode::kHaechi) {
  auto build = [&](harness::Mode mode) {
    harness::ExperimentConfig config =
        BaseConfig(args, /*default_periods=*/10);
    config.mode = mode;
    // Spike reservations: 3x285K + 7x80K = 1415K ≈ 90% of 1570K; demand is
    // Experiment 1C's spike demand (3x340K + 7x80K = 1580K, just enough to
    // saturate the node) — the hot clients' 55K of excess demand consumes
    // the 10% global pool.
    const auto res_hot = static_cast<std::int64_t>(285'000 * args.scale);
    const auto dem_hot = static_cast<std::int64_t>(340'000 * args.scale);
    const auto cold = static_cast<std::int64_t>(80'000 * args.scale);
    AddClients(config, workload::SpikeShare(10, 3, res_hot, cold),
               workload::SpikeShare(10, 3, dem_hot, cold), pattern);
    return config;
  };

  Set3Result out;
  {
    harness::ExperimentConfig config = build(qos_mode);
    const auto periods = config.measure_periods;
    const auto period = config.qos.period;
    const auto reservations = config.clients;
    harness::ExperimentResult r =
        harness::Experiment(std::move(config)).Run();
    for (std::uint32_t c = 0; c < 10; ++c) {
      out.reservation_kiops.push_back(
          static_cast<double>(reservations[c].reservation) / 1e3);
      out.completed_kiops.push_back(
          ToKiops(r.series.ClientTotal(MakeClientId(c)),
                  static_cast<SimDuration>(periods) * period));
    }
    out.total_kiops = r.total_kiops;
    out.latency = std::move(r.latency);
  }
  if (with_bare_baseline) {
    out.bare_total_kiops =
        harness::Experiment(build(harness::Mode::kBare)).Run().total_kiops;
  }
  return out;
}

}  // namespace haechi::bench
