// Figure 17 (Set 4): per-period completions of the highest-reservation
// client (C1) when congestion starts mid-run. Paper: Uniform — C1 drops to
// a lower steady value but keeps meeting its reservation; Zipf — C1
// initially misses its reservation, then recovers within a few periods as
// the Adaptive Capacity Estimation algorithm shrinks the token allocation.
#include "bench/set4_common.hpp"

namespace haechi::bench {
namespace {

int Main(int argc, const char* const* argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 17 / Set 4: C1 under congestion start",
              "uniform: C1 keeps its reservation at a lower total; zipf: "
              "C1 dips below its reservation, then recovers as the "
              "estimate adapts");

  for (const bool zipf : {false, true}) {
    std::printf("--- %s reservation distribution ---\n",
                zipf ? "Zipf" : "Uniform");
    const Set4Result r = RunSet4(args, zipf, /*congestion_starts=*/true);
    PrintSeries(args, r, /*show_c1=*/true);
    // Reservation attainment immediately after the step vs at the end.
    const double res = static_cast<double>(r.c1_reservation);
    const double right_after =
        MeanOver(r.c1_per_period, r.step_period, r.step_period + 3) / res;
    const double at_end = MeanOver(r.c1_per_period,
                                   r.period_totals.size() - 5,
                                   r.period_totals.size()) /
                          res;
    std::printf("C1 attainment right after the step: %.1f%%; last 5 "
                "periods: %.1f%% (paper zipf: dips below 100%%, then "
                "recovers)\n\n",
                right_after * 100.0, at_end * 100.0);
  }
  PrintFooter(args);
  return 0;
}

}  // namespace
}  // namespace haechi::bench

int main(int argc, char** argv) { return haechi::bench::Main(argc, argv); }
